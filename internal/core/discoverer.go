package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"narada/internal/event"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/transport"
	"narada/internal/uuid"
)

// Config parameterises a Discoverer. Zero values fall back to the paper's
// typical settings (see the Default* constants).
type Config struct {
	// NodeName identifies the requesting node (hostname / logical name).
	NodeName string
	// Realm is the requester's network realm, carried in the request for
	// realm-predicated response policies.
	Realm string
	// BDNAddrs lists broker-discovery-node stream addresses to try in order
	// (the node configuration file's gridservicelocator.org/.com/... list).
	BDNAddrs []string
	// MulticastGroup enables the BDN-less fallback: the request is
	// multicast so brokers in the local realm hear it directly.
	// Empty disables multicast.
	MulticastGroup string
	// CollectWindow bounds the wait for the initial set of responses
	// ("typically 4-5 seconds; this can be configured depending on the
	// accuracy that we seek to achieve").
	CollectWindow time.Duration
	// MaxResponses, when > 0, ends the collection early once N distinct
	// brokers have responded ("only the first N responses must be
	// considered").
	MaxResponses int
	// Selection parameterises shortlisting (weights, latency penalty,
	// target-set size).
	Selection SelectionConfig
	// PingCount is the number of UDP pings per target broker; the RTT is
	// the average over received pongs ("this PING operation may be repeated
	// multiple times to compute the average network Round Trip Time").
	PingCount int
	// PingWindow bounds the wait for pong replies.
	PingWindow time.Duration
	// AckTimeout is the inactivity period after which an unacknowledged
	// request is retransmitted.
	AckTimeout time.Duration
	// MaxRetransmits bounds retransmissions per BDN.
	MaxRetransmits int
	// Credentials are attached to the request for authorized access.
	Credentials []byte
	// Protocols lists transports the requester can speak.
	Protocols []string
	// Metrics, when set, receives the discovery metric families (nil
	// disables exposition; recording stays enabled against a private
	// registry).
	Metrics *obs.Registry
	// Tracer, when set, records a per-request trace of every discovery —
	// one span per phase plus point events — keyed by the request UUID.
	Tracer *obs.Tracer
}

// Paper-typical defaults.
const (
	DefaultCollectWindow  = 4 * time.Second
	DefaultPingCount      = 3
	DefaultPingWindow     = 1 * time.Second
	DefaultAckTimeout     = 1 * time.Second
	DefaultMaxRetransmits = 2
)

func (c *Config) fillDefaults() {
	if c.CollectWindow <= 0 {
		c.CollectWindow = DefaultCollectWindow
	}
	if c.Selection.TargetSetSize <= 0 {
		c.Selection.TargetSetSize = DefaultTargetSetSize
	}
	// A zero Weights struct means "untouched": substitute the paper-typical
	// weighting. To genuinely disable a factor, set Weights explicitly.
	if c.Selection.Weights == (metrics.Weights{}) {
		c.Selection.Weights = metrics.DefaultWeights()
		if c.Selection.LatencyPenaltyPerMs == 0 {
			c.Selection.LatencyPenaltyPerMs = DefaultLatencyPenaltyPerMs
		}
	}
	if c.PingCount <= 0 {
		c.PingCount = DefaultPingCount
	}
	if c.PingWindow <= 0 {
		c.PingWindow = DefaultPingWindow
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	if c.MaxRetransmits < 0 {
		c.MaxRetransmits = DefaultMaxRetransmits
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []string{"tcp", "udp"}
	}
}

// Via describes how a discovery reached brokers.
type Via string

// Discovery paths.
const (
	ViaBDN       Via = "bdn"       // request accepted by a BDN
	ViaMulticast Via = "multicast" // BDN-less multicast fallback
	ViaCached    Via = "cached"    // last-target-set fallback
)

// Result is the outcome of one discovery.
type Result struct {
	RequestID   uuid.UUID     // the request UUID (keys the cross-node trace)
	Selected    BrokerInfo    // the broker to connect to
	SelectedRTT time.Duration // its measured average ping RTT
	PingDecided bool          // false when no target ponged and score decided
	TargetSet   []Candidate   // the shortlisted set T
	Responses   []Candidate   // every distinct response received
	Timing      Breakdown     // per-phase durations
	Via         Via           // how brokers were reached
	BDN         string        // acknowledging BDN, when Via == ViaBDN
	Retransmits int           // request retransmissions performed
}

// Discovery errors.
var (
	ErrNoResponses = errors.New("core: no discovery responses received")
	ErrNoPath      = errors.New("core: no BDN reachable, no multicast group, no cached target set")
)

// Discoverer drives broker discovery for one requesting node.
type Discoverer struct {
	node transport.Node
	ntp  *ntptime.Service
	cfg  Config

	mu          sync.Mutex
	lastTargets []BrokerInfo // "Every node keeps track of its last target set of brokers"

	tel telemetry
}

// NewDiscoverer creates a discovery engine. ntp must be synchronized (or be
// synchronized before Discover is called) for latency estimation to work.
func NewDiscoverer(node transport.Node, ntp *ntptime.Service, cfg Config) *Discoverer {
	cfg.fillDefaults()
	d := &Discoverer{node: node, ntp: ntp, cfg: cfg}
	d.initTelemetry(cfg.Metrics, cfg.Tracer)
	return d
}

// Config returns the effective (default-filled) configuration.
func (d *Discoverer) Config() Config { return d.cfg }

// LastTargetSet returns the brokers shortlisted by the most recent discovery.
func (d *Discoverer) LastTargetSet() []BrokerInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]BrokerInfo(nil), d.lastTargets...)
}

// SeedTargetSet primes the cached target set (e.g. persisted across runs).
func (d *Discoverer) SeedTargetSet(brokers []BrokerInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastTargets = append([]BrokerInfo(nil), brokers...)
}

// Discover performs one complete broker discovery: issue the request (BDN,
// then multicast, then cached-target-set fallback), collect responses for the
// window, shortlist by delay+usage weighting, ping the target set over UDP
// and select the broker with the lowest measured delay.
//
// Every run is folded into the discovery metric families, and — when a tracer
// is configured — recorded as a per-request trace keyed by the request UUID:
// one span per Phase plus point events for the responses and the selection.
func (d *Discoverer) Discover() (*Result, error) {
	res, err := d.discover()
	d.observeOutcome(res, err)
	return res, err
}

func (d *Discoverer) discover() (*Result, error) {
	clock := d.node.Clock()
	res := &Result{}

	pc, err := d.node.ListenPacket(0)
	if err != nil {
		return nil, fmt.Errorf("core: opening response endpoint: %w", err)
	}
	defer pc.Close() //nolint:errcheck

	req := &DiscoveryRequest{
		ID:           uuid.New(),
		Requester:    d.cfg.NodeName,
		Realm:        d.cfg.Realm,
		ResponseAddr: pc.LocalAddr(),
		Protocols:    d.cfg.Protocols,
		Credentials:  d.cfg.Credentials,
	}
	if t, err := d.ntp.UTC(); err == nil {
		req.IssuedAt = t
	} else {
		req.IssuedAt = clock.Now()
	}
	res.RequestID = req.ID
	// Nil tracer yields a nil trace; every method on it is a no-op.
	tr := d.tel.tracer.Trace(req.ID.String())

	// Phase 1: issue the request.
	start := clock.Now()
	via, bdnName, retransmits, err := d.issue(req, pc)
	dur := clock.Now().Sub(start)
	res.Timing.Set(PhaseRequestIssue, dur)
	tr.Span(PhaseRequestIssue.String(), start, dur,
		obs.A("node", d.cfg.NodeName), obs.A("via", string(via)))
	if err != nil {
		return res, err
	}
	res.Via, res.BDN, res.Retransmits = via, bdnName, retransmits

	// Phase 2: wait for the initial set of responses. Pongs can also land on
	// this endpoint (stray late ones from earlier runs); they are skipped.
	start = clock.Now()
	responses := d.collect(pc, req.ID, tr)
	dur = clock.Now().Sub(start)
	res.Timing.Set(PhaseWaitResponses, dur)
	tr.Span(PhaseWaitResponses.String(), start, dur,
		obs.A("responses", strconv.Itoa(len(responses))))
	res.Responses = responses
	if len(responses) == 0 {
		return res, ErrNoResponses
	}

	// Phase 3: shortlist the target set.
	start = clock.Now()
	res.TargetSet = Shortlist(responses, d.cfg.Selection)
	dur = clock.Now().Sub(start)
	res.Timing.Set(PhaseShortlist, dur)
	tr.Span(PhaseShortlist.String(), start, dur,
		obs.A("target-set", strconv.Itoa(len(res.TargetSet))))

	d.mu.Lock()
	d.lastTargets = d.lastTargets[:0]
	for _, c := range res.TargetSet {
		d.lastTargets = append(d.lastTargets, c.Response.Broker)
	}
	d.mu.Unlock()

	// Phase 4: UDP ping refinement.
	start = clock.Now()
	d.ping(pc, res.TargetSet, req.ID.String())
	dur = clock.Now().Sub(start)
	res.Timing.Set(PhasePing, dur)
	tr.Span(PhasePing.String(), start, dur)

	// Phase 5: decide.
	start = clock.Now()
	idx, pinged := PickByPing(res.TargetSet)
	if idx < 0 {
		return res, ErrNoResponses
	}
	res.Selected = res.TargetSet[idx].Response.Broker
	res.SelectedRTT = res.TargetSet[idx].PingRTT
	res.PingDecided = pinged
	dur = clock.Now().Sub(start)
	res.Timing.Set(PhaseDecide, dur)
	tr.Span(PhaseDecide.String(), start, dur,
		obs.A("selected", res.Selected.LogicalAddress),
		obs.A("rtt", res.SelectedRTT.String()))
	return res, nil
}

// issue delivers the request to the broker network: first via the configured
// BDNs (with ack-driven retransmission), then via multicast, then via the
// cached last target set.
func (d *Discoverer) issue(req *DiscoveryRequest, pc transport.PacketConn) (Via, string, int, error) {
	retransmits := 0
	body := EncodeDiscoveryRequest(req)
	ev := event.New(event.TypeDiscoveryRequest, "", body)
	ev.Source = d.cfg.NodeName
	ev.Timestamp = req.IssuedAt
	ev.SetTrace(req.ID.String(), d.cfg.NodeName, 0)
	frame := event.Encode(ev)

	for _, addr := range d.cfg.BDNAddrs {
		bdnName, tries, err := d.issueToBDN(addr, frame, req.ID)
		retransmits += tries
		if err == nil {
			return ViaBDN, bdnName, retransmits, nil
		}
	}

	if d.cfg.MulticastGroup != "" {
		if err := pc.SendGroup(d.cfg.MulticastGroup, frame); err == nil {
			return ViaMulticast, "", retransmits, nil
		}
	}

	d.mu.Lock()
	cached := append([]BrokerInfo(nil), d.lastTargets...)
	d.mu.Unlock()
	if len(cached) > 0 {
		sent := 0
		for _, b := range cached {
			if udp := b.Endpoint("udp"); udp != "" {
				if err := pc.Send(udp, frame); err == nil {
					sent++
				}
			}
		}
		if sent > 0 {
			return ViaCached, "", retransmits, nil
		}
	}
	return "", "", retransmits, ErrNoPath
}

// issueToBDN sends the request over a stream to one BDN and waits for the
// acknowledgement, retransmitting after AckTimeout of inactivity. It returns
// the number of retransmissions performed.
func (d *Discoverer) issueToBDN(addr string, frame []byte, id uuid.UUID) (string, int, error) {
	conn, err := d.node.Dial(addr)
	if err != nil {
		return "", 0, err
	}
	defer conn.Close() //nolint:errcheck

	tries := 0
	for attempt := 0; attempt <= d.cfg.MaxRetransmits; attempt++ {
		if attempt > 0 {
			tries++
		}
		if err := conn.Send(frame); err != nil {
			return "", tries, err
		}
		reply, err := conn.RecvTimeout(d.cfg.AckTimeout)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				continue // retransmission after predefined period of inactivity
			}
			return "", tries, err
		}
		ev, err := event.Decode(reply)
		if err != nil || ev.Type != event.TypeDiscoveryAck {
			continue
		}
		ack, err := DecodeAck(ev.Payload)
		if err != nil || ack.RequestID != id {
			continue
		}
		return ack.BDN, tries, nil
	}
	return "", tries, fmt.Errorf("core: BDN %s: %w", addr, transport.ErrTimeout)
}

// collect gathers discovery responses for the collection window, ending early
// once MaxResponses distinct brokers have answered. Duplicate responses from
// the same broker (multiple injection points can reach it; it dedups, but
// responses may still race) are folded. Each accepted response is recorded as
// a point event on the trace, carrying the broker identity and the hop count
// the response's trace headers travelled.
func (d *Discoverer) collect(pc transport.PacketConn, id uuid.UUID, tr *obs.Trace) []Candidate {
	clock := d.node.Clock()
	deadline := clock.Now().Add(d.cfg.CollectWindow)
	seen := make(map[string]struct{})
	var out []Candidate
	for {
		remaining := deadline.Sub(clock.Now())
		if remaining <= 0 {
			return out
		}
		payload, _, err := pc.RecvTimeout(remaining)
		if err != nil {
			return out
		}
		ev, err := event.Decode(payload)
		if err != nil || ev.Type != event.TypeDiscoveryResponse {
			continue
		}
		resp, err := DecodeDiscoveryResponse(ev.Payload)
		if err != nil || resp.RequestID != id {
			continue
		}
		key := resp.Broker.LogicalAddress
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		receivedAt, err := d.ntp.UTC()
		if err != nil {
			receivedAt = clock.Now()
		}
		_, _, hop, _ := ev.Trace()
		tr.Event("response-received", clock.Now(),
			obs.A("node", d.cfg.NodeName),
			obs.A("broker", key),
			obs.A("hop", strconv.Itoa(int(hop))))
		out = append(out, Candidate{
			Response:   resp,
			ReceivedAt: receivedAt,
			EstLatency: EstimateLatency(resp.Timestamp, receivedAt),
		})
		if d.cfg.MaxResponses > 0 && len(out) >= d.cfg.MaxResponses {
			return out
		}
	}
}

// ping sends PingCount UDP pings to every target broker and collects pongs
// until the ping window closes or every expected pong has arrived, filling
// each candidate's PingRTT/PingCount. Pings carry the discovery's trace
// context so the pinged brokers record their ping handling into the same
// cross-node trace.
func (d *Discoverer) ping(pc transport.PacketConn, targets []Candidate, traceID string) {
	clock := d.node.Clock()
	type slot struct {
		idx  int
		sent map[uint32]time.Time // seq -> local send time
	}
	byID := make(map[uuid.UUID]*slot, len(targets))
	expected := 0

	for i := range targets {
		udp := targets[i].Response.Broker.Endpoint("udp")
		if udp == "" {
			continue
		}
		s := &slot{idx: i, sent: make(map[uint32]time.Time, d.cfg.PingCount)}
		pid := uuid.New()
		byID[pid] = s
		for seq := 0; seq < d.cfg.PingCount; seq++ {
			now := clock.Now()
			body := EncodePing(&Ping{ID: pid, SentAt: now, Seq: uint32(seq)})
			ev := event.New(event.TypePing, "", body)
			ev.Source = d.cfg.NodeName
			ev.SetTrace(traceID, d.cfg.NodeName, 0)
			if err := pc.Send(udp, event.Encode(ev)); err != nil {
				continue
			}
			s.sent[uint32(seq)] = now
			expected++
		}
	}
	if expected == 0 {
		return
	}

	sums := make(map[int]time.Duration)
	counts := make(map[int]int)
	deadline := clock.Now().Add(d.cfg.PingWindow)
	received := 0
	for received < expected {
		remaining := deadline.Sub(clock.Now())
		if remaining <= 0 {
			break
		}
		payload, _, err := pc.RecvTimeout(remaining)
		if err != nil {
			break
		}
		ev, err := event.Decode(payload)
		if err != nil || ev.Type != event.TypePong {
			continue
		}
		pong, err := DecodePong(ev.Payload)
		if err != nil {
			continue
		}
		s, ok := byID[pong.ID]
		if !ok {
			continue
		}
		sentAt, ok := s.sent[pong.Seq]
		if !ok {
			continue
		}
		delete(s.sent, pong.Seq) // one RTT sample per (id, seq)
		rtt := clock.Now().Sub(sentAt)
		if rtt < 0 {
			rtt = 0
		}
		sums[s.idx] += rtt
		counts[s.idx]++
		received++
	}
	for idx, n := range counts {
		targets[idx].PingCount = n
		targets[idx].PingRTT = sums[idx] / time.Duration(n)
	}
}
