package core

import "crypto/subtle"

// ResponsePolicy is a broker's (or private BDN's) gate on discovery requests:
// "A broker's response policy may predicate responses based on the
// presentation of appropriate credentials. Furthermore the policy may also
// dictate that responses be issued only if the request originated from within
// a set of pre-defined network realms."
type ResponsePolicy struct {
	// RequiredCredential, when non-empty, must match the request's
	// credential bytes exactly (shared-secret scheme; the security package
	// provides the stronger signed/encrypted variant).
	RequiredCredential []byte
	// AllowedRealms, when non-empty, whitelists requester realms.
	AllowedRealms []string
	// Verifier, when set, overrides RequiredCredential with an arbitrary
	// credential check (e.g. X.509 chain validation).
	Verifier func(credentials []byte) bool
}

// OpenPolicy responds to everyone.
var OpenPolicy = ResponsePolicy{}

// Permits reports whether a request satisfies the policy.
func (p *ResponsePolicy) Permits(q *DiscoveryRequest) bool {
	if len(p.AllowedRealms) > 0 {
		ok := false
		for _, r := range p.AllowedRealms {
			if r == q.Realm {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if p.Verifier != nil {
		return p.Verifier(q.Credentials)
	}
	if len(p.RequiredCredential) > 0 {
		if len(q.Credentials) != len(p.RequiredCredential) {
			return false
		}
		return subtle.ConstantTimeCompare(q.Credentials, p.RequiredCredential) == 1
	}
	return true
}
