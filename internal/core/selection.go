package core

import (
	"sort"
	"time"

	"narada/internal/metrics"
)

// Candidate pairs a broker's discovery response with the requester-side
// measurements derived from it.
type Candidate struct {
	Response   *DiscoveryResponse
	ReceivedAt time.Time     // requester NTP UTC when the response arrived
	EstLatency time.Duration // one-way estimate: ReceivedAt - Response.Timestamp
	Score      float64       // combined usage/latency selection weight

	// Ping-refinement results (populated during the ping phase).
	PingRTT   time.Duration // average measured round-trip time
	PingCount int           // pongs received
}

// SelectionConfig parameterises shortlisting.
type SelectionConfig struct {
	// Weights are the usage-metric weighting factors (paper §9 pseudocode).
	Weights metrics.Weights
	// LatencyPenaltyPerMs is subtracted from the score per millisecond of
	// estimated one-way latency, folding "computed delays" into the ranking
	// alongside usage metrics. Zero disables latency-aware shortlisting.
	LatencyPenaltyPerMs float64
	// TargetSetSize is |T|, the number of brokers kept for ping refinement;
	// "usually the broker target set is limited to a very small number,
	// between 5 and 20" — the paper's typical value is 10.
	TargetSetSize int
}

// DefaultTargetSetSize is the paper's typical target-set size.
const DefaultTargetSetSize = 10

// DefaultLatencyPenaltyPerMs makes 10 ms of estimated latency cost as much
// as one active link in the default weighting.
const DefaultLatencyPenaltyPerMs = 0.05

// DefaultSelectionConfig returns the paper-typical selection parameters.
func DefaultSelectionConfig() SelectionConfig {
	return SelectionConfig{
		Weights:             metrics.DefaultWeights(),
		LatencyPenaltyPerMs: DefaultLatencyPenaltyPerMs,
		TargetSetSize:       DefaultTargetSetSize,
	}
}

// ScoreCandidate computes the combined selection weight for one response.
func (cfg SelectionConfig) ScoreCandidate(c *Candidate) float64 {
	score := cfg.Weights.Score(c.Response.Usage)
	score -= cfg.LatencyPenaltyPerMs * float64(c.EstLatency) / float64(time.Millisecond)
	return score
}

// Shortlist scores, sorts (best first) and truncates the candidates to the
// target set T with size(T) <= size(N). The input slice is not modified.
func Shortlist(cands []Candidate, cfg SelectionConfig) []Candidate {
	if cfg.TargetSetSize <= 0 {
		cfg.TargetSetSize = DefaultTargetSetSize
	}
	out := append([]Candidate(nil), cands...)
	for i := range out {
		out[i].Score = cfg.ScoreCandidate(&out[i])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > cfg.TargetSetSize {
		out = out[:cfg.TargetSetSize]
	}
	return out
}

// PickByPing returns the index of the target with the lowest measured average
// ping RTT ("The requesting node decides on the target node based on the
// lowest delay associated with the ping requests"). Targets that produced no
// pong are skipped — their loss "provides a good indicator of the underlying
// response". When no target ponged at all, the best-scored candidate wins
// (ok == false flags the degraded decision).
func PickByPing(targets []Candidate) (idx int, ok bool) {
	best := -1
	for i := range targets {
		if targets[i].PingCount == 0 {
			continue
		}
		if best < 0 || targets[i].PingRTT < targets[best].PingRTT {
			best = i
		}
	}
	if best >= 0 {
		return best, true
	}
	if len(targets) > 0 {
		return 0, false // Shortlist already ordered by score
	}
	return -1, false
}

// EstimateLatency computes the one-way latency estimate for a response
// received at the given requester UTC instant. Clock residuals can push the
// difference negative; it is clamped at zero ("a very good estimate", not an
// exact one).
func EstimateLatency(respTimestamp, receivedAtUTC time.Time) time.Duration {
	d := receivedAtUTC.Sub(respTimestamp)
	if d < 0 {
		d = 0
	}
	return d
}
