package core

import (
	"narada/internal/obs"
)

// phaseLatencyBuckets span the sub-millisecond shortlist/decide phases up to
// multi-second collection windows.
var phaseLatencyBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// pingRTTBuckets cover LAN to intercontinental round trips.
var pingRTTBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// telemetry bundles the discoverer's metric handles, resolved once in
// initTelemetry. A discoverer constructed without a registry records into a
// private throwaway registry, so Discover never branches on "metrics on?".
type telemetry struct {
	phases    [phaseCount]*obs.Histogram // per-phase duration, Breakdown mirror
	total     *obs.Histogram             // end-to-end discovery duration
	responses *obs.Histogram             // distinct responses per discovery
	pingRTT   *obs.Histogram             // per-candidate average ping RTT

	ok          *obs.Counter // discoveries that selected a broker
	noResponses *obs.Counter // discoveries that drew no responses
	noPath      *obs.Counter // discoveries with no way to issue the request
	retransmits *obs.Counter // BDN request retransmissions

	tracer *obs.Tracer
}

// initTelemetry registers the discovery metric families on reg (nil gets a
// private registry) and captures the trace recorder. Instance identity rides
// in the node="<name>" label.
func (d *Discoverer) initTelemetry(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	who := obs.L("node", d.cfg.NodeName)
	t := &d.tel
	t.tracer = tracer

	const phase = "narada_discovery_phase_seconds"
	const phaseHelp = "Duration of each discovery sub-activity (paper Figures 2/9/11)."
	for _, p := range Phases() {
		t.phases[p] = reg.Histogram(phase, phaseHelp, phaseLatencyBuckets,
			who, obs.L("phase", p.String()))
	}
	t.total = reg.Histogram("narada_discovery_total_seconds",
		"End-to-end duration of one discovery.", phaseLatencyBuckets, who)
	t.responses = reg.Histogram("narada_discovery_responses",
		"Distinct broker responses collected per discovery.",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128}, who)
	t.pingRTT = reg.Histogram("narada_discovery_ping_rtt_seconds",
		"Average UDP ping round-trip time per shortlisted broker.",
		pingRTTBuckets, who)

	const outcome = "narada_discovery_requests_total"
	const outcomeHelp = "Discoveries performed, by outcome."
	t.ok = reg.Counter(outcome, outcomeHelp, who, obs.L("outcome", "ok"))
	t.noResponses = reg.Counter(outcome, outcomeHelp, who, obs.L("outcome", "no-responses"))
	t.noPath = reg.Counter(outcome, outcomeHelp, who, obs.L("outcome", "no-path"))
	t.retransmits = reg.Counter("narada_discovery_retransmits_total",
		"Discovery request retransmissions to BDNs.", who)

	reg.GaugeFunc("narada_ntptime_offset_seconds",
		"Signed error of the NTP-corrected clock against true UTC.",
		func() float64 { return d.ntp.Residual().Seconds() }, who)
	reg.GaugeFunc("narada_ntptime_synchronized",
		"1 once the NTP service has computed clock offsets.",
		func() float64 {
			if d.ntp.Synchronized() {
				return 1
			}
			return 0
		}, who)
}

// observeOutcome folds a finished discovery into the metric families: one
// outcome count, the per-phase and total histograms, response counts and the
// measured ping RTTs of the target set.
func (d *Discoverer) observeOutcome(res *Result, err error) {
	switch err {
	case nil:
		d.tel.ok.Inc()
	case ErrNoResponses:
		d.tel.noResponses.Inc()
	case ErrNoPath:
		d.tel.noPath.Inc()
	default:
		// Issue-path failures (listen errors etc.) land here; count them with
		// the unreachable case, the closest outcome.
		d.tel.noPath.Inc()
	}
	if res == nil {
		return
	}
	d.tel.retransmits.Add(uint64(res.Retransmits))
	for _, p := range Phases() {
		if dur := res.Timing.Get(p); dur > 0 {
			d.tel.phases[p].ObserveDuration(dur)
		}
	}
	d.tel.total.ObserveDuration(res.Timing.Total())
	d.tel.responses.Observe(float64(len(res.Responses)))
	for _, c := range res.TargetSet {
		if c.PingCount > 0 {
			d.tel.pingRTT.ObserveDuration(c.PingRTT)
		}
	}
}
