package core

import (
	"fmt"
	"strings"
	"time"
)

// Phase identifies one sub-activity of the discovery process; the paper's
// Figures 2, 9 and 11 report the percentage of total time spent in each.
type Phase int

// Discovery sub-activities, in execution order.
const (
	PhaseRequestIssue  Phase = iota // issue request to BDN / multicast, await ack
	PhaseWaitResponses              // wait for the initial set of responses
	PhaseShortlist                  // latency estimation, weighting, target set
	PhasePing                       // UDP ping refinement of the target set
	PhaseDecide                     // final selection
	phaseCount
)

var phaseNames = [...]string{
	"request-issue",
	"wait-initial-responses",
	"shortlist",
	"ping-measurement",
	"decide",
}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Phases lists all phases in order.
func Phases() []Phase {
	out := make([]Phase, phaseCount)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Breakdown records the duration of each discovery sub-activity.
type Breakdown struct {
	durations [phaseCount]time.Duration
}

// Set records a phase duration.
func (b *Breakdown) Set(p Phase, d time.Duration) {
	if p >= 0 && p < phaseCount {
		b.durations[p] = d
	}
}

// Get returns a phase duration.
func (b *Breakdown) Get(p Phase) time.Duration {
	if p < 0 || p >= phaseCount {
		return 0
	}
	return b.durations[p]
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.durations {
		t += d
	}
	return t
}

// Percent returns the share of total time spent in a phase, in [0, 100].
func (b *Breakdown) Percent(p Phase) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(b.Get(p)) / float64(total)
}

// Add accumulates another breakdown (used when averaging over runs).
func (b *Breakdown) Add(o *Breakdown) {
	for i := range b.durations {
		b.durations[i] += o.durations[i]
	}
}

// String renders the per-phase durations and percentages.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for _, p := range Phases() {
		fmt.Fprintf(&sb, "%-24s %12v %6.2f%%\n", p, b.Get(p), b.Percent(p))
	}
	fmt.Fprintf(&sb, "%-24s %12v", "total", b.Total())
	return sb.String()
}
