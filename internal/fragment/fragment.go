// Package fragment implements the NaradaBrokering payload services the paper
// lists among the substrate's capabilities: "(de)compression of large
// payloads, fragmentation and coalescing of large datasets".
//
// A large payload is optionally gzip-compressed, split into fixed-size
// fragments each carrying (set id, index, total, checksum), published as
// ordinary events, and coalesced at the consumer — tolerating interleaved
// sets from multiple producers, duplicated fragments (flooding can duplicate
// at the event layer before dedup) and out-of-order arrival.
package fragment

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"narada/internal/uuid"
	"narada/internal/wire"
)

// DefaultFragmentSize is the default maximum payload bytes per fragment.
const DefaultFragmentSize = 32 * 1024

// Config parameterises fragmentation.
type Config struct {
	// FragmentSize bounds the payload bytes carried per fragment
	// (<= 0 means DefaultFragmentSize).
	FragmentSize int
	// Compress gzips the payload before splitting when it shrinks it.
	Compress bool
	// MinCompressSize skips compression for small payloads.
	MinCompressSize int
}

func (c *Config) fillDefaults() {
	if c.FragmentSize <= 0 {
		c.FragmentSize = DefaultFragmentSize
	}
	if c.MinCompressSize <= 0 {
		c.MinCompressSize = 512
	}
}

// Fragment is one piece of a split payload.
type Fragment struct {
	SetID      uuid.UUID // identifies the original payload
	Index      uint32    // 0-based fragment index
	Total      uint32    // number of fragments in the set
	Compressed bool      // whole-set flag: payload was gzipped before splitting
	Checksum   uint32    // CRC-32 (IEEE) of this fragment's data
	Data       []byte
}

// Errors returned by decoding and coalescing.
var (
	ErrCorrupt      = errors.New("fragment: checksum mismatch")
	ErrInconsistent = errors.New("fragment: inconsistent set metadata")
)

// Encode serialises a fragment with the wire codec.
func Encode(f *Fragment) []byte {
	w := wire.NewWriter(32 + len(f.Data))
	w.Bytes16([16]byte(f.SetID))
	w.Uvarint(uint64(f.Index))
	w.Uvarint(uint64(f.Total))
	w.Bool(f.Compressed)
	w.Uvarint(uint64(f.Checksum))
	w.BytesField(f.Data)
	return w.Bytes()
}

// Decode parses a fragment and verifies its checksum.
func Decode(b []byte) (*Fragment, error) {
	r := wire.NewReader(b)
	f := &Fragment{
		SetID:      uuid.UUID(r.Bytes16()),
		Index:      uint32(r.Uvarint()),
		Total:      uint32(r.Uvarint()),
		Compressed: r.Bool(),
		Checksum:   uint32(r.Uvarint()),
		Data:       r.BytesField(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("fragment: %w", err)
	}
	if crc32.ChecksumIEEE(f.Data) != f.Checksum {
		return nil, ErrCorrupt
	}
	if f.Total == 0 || f.Index >= f.Total {
		return nil, fmt.Errorf("%w: index %d of %d", ErrInconsistent, f.Index, f.Total)
	}
	return f, nil
}

// Split fragments (and optionally compresses) a payload. Even an empty
// payload yields one (empty) fragment so the set is self-delimiting.
func Split(payload []byte, cfg Config) ([]*Fragment, error) {
	cfg.fillDefaults()
	compressed := false
	data := payload
	if cfg.Compress && len(payload) >= cfg.MinCompressSize {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(payload); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		if buf.Len() < len(payload) {
			data = buf.Bytes()
			compressed = true
		}
	}

	total := (len(data) + cfg.FragmentSize - 1) / cfg.FragmentSize
	if total == 0 {
		total = 1
	}
	id := uuid.New()
	out := make([]*Fragment, 0, total)
	for i := 0; i < total; i++ {
		lo := i * cfg.FragmentSize
		hi := lo + cfg.FragmentSize
		if hi > len(data) {
			hi = len(data)
		}
		chunk := append([]byte(nil), data[lo:hi]...)
		out = append(out, &Fragment{
			SetID:      id,
			Index:      uint32(i),
			Total:      uint32(total),
			Compressed: compressed,
			Checksum:   crc32.ChecksumIEEE(chunk),
			Data:       chunk,
		})
	}
	return out, nil
}

// Coalescer reassembles fragment sets. It is safe for concurrent use and
// evicts stale incomplete sets after an expiry window.
type Coalescer struct {
	mu     sync.Mutex
	sets   map[uuid.UUID]*pending
	expiry time.Duration
	now    func() time.Time
}

type pending struct {
	total      uint32
	compressed bool
	parts      map[uint32][]byte
	firstSeen  time.Time
}

// NewCoalescer creates a Coalescer evicting incomplete sets older than
// expiry (<= 0 means 1 minute). now may override the time source for tests.
func NewCoalescer(expiry time.Duration, now func() time.Time) *Coalescer {
	if expiry <= 0 {
		expiry = time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &Coalescer{sets: make(map[uuid.UUID]*pending), expiry: expiry, now: now}
}

// Add feeds one fragment. When the fragment completes its set, the
// reassembled (and decompressed) payload is returned with done == true.
// Duplicate fragments are ignored.
func (c *Coalescer) Add(f *Fragment) (payload []byte, done bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictLocked()

	p, ok := c.sets[f.SetID]
	if !ok {
		p = &pending{
			total:      f.Total,
			compressed: f.Compressed,
			parts:      make(map[uint32][]byte, f.Total),
			firstSeen:  c.now(),
		}
		c.sets[f.SetID] = p
	}
	if p.total != f.Total || p.compressed != f.Compressed {
		return nil, false, fmt.Errorf("%w: set %s", ErrInconsistent, f.SetID)
	}
	if _, dup := p.parts[f.Index]; dup {
		return nil, false, nil
	}
	p.parts[f.Index] = f.Data
	if uint32(len(p.parts)) < p.total {
		return nil, false, nil
	}

	// Complete: reassemble in index order.
	delete(c.sets, f.SetID)
	var buf bytes.Buffer
	for i := uint32(0); i < p.total; i++ {
		buf.Write(p.parts[i])
	}
	data := buf.Bytes()
	if p.compressed {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, false, fmt.Errorf("fragment: decompressing: %w", err)
		}
		out, err := io.ReadAll(zr)
		if err != nil {
			return nil, false, fmt.Errorf("fragment: decompressing: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, false, err
		}
		return out, true, nil
	}
	return data, true, nil
}

// Pending returns the number of incomplete sets held.
func (c *Coalescer) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sets)
}

func (c *Coalescer) evictLocked() {
	cutoff := c.now().Add(-c.expiry)
	for id, p := range c.sets {
		if p.firstSeen.Before(cutoff) {
			delete(c.sets, id)
		}
	}
}
