package fragment

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func randomPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// compressiblePayload repeats a short phrase so gzip actually shrinks it.
func compressiblePayload(n int) []byte {
	phrase := []byte("NaradaBrokering broker discovery payload ")
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, phrase...)
	}
	return out[:n]
}

func reassemble(t *testing.T, frags []*Fragment, shuffleSeed int64) []byte {
	t.Helper()
	order := rand.New(rand.NewSource(shuffleSeed)).Perm(len(frags))
	c := NewCoalescer(0, nil)
	for i, idx := range order {
		payload, done, err := c.Add(frags[idx])
		if err != nil {
			t.Fatal(err)
		}
		if done != (i == len(order)-1) {
			t.Fatalf("done=%v at fragment %d/%d", done, i+1, len(order))
		}
		if done {
			return payload
		}
	}
	t.Fatal("set never completed")
	return nil
}

func TestSplitCoalesceRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 100, DefaultFragmentSize, DefaultFragmentSize + 1, 200000} {
		payload := randomPayload(size, int64(size))
		frags, err := Split(payload, Config{})
		if err != nil {
			t.Fatal(err)
		}
		wantFrags := (size + DefaultFragmentSize - 1) / DefaultFragmentSize
		if wantFrags == 0 {
			wantFrags = 1
		}
		if len(frags) != wantFrags {
			t.Fatalf("size %d: %d fragments, want %d", size, len(frags), wantFrags)
		}
		got := reassemble(t, frags, int64(size)+7)
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: reassembled payload differs", size)
		}
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	payload := compressiblePayload(100000)
	frags, err := Split(payload, Config{Compress: true, FragmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !frags[0].Compressed {
		t.Fatal("compressible payload not compressed")
	}
	var carried int
	for _, f := range frags {
		carried += len(f.Data)
	}
	if carried >= len(payload) {
		t.Fatalf("compression did not shrink: %d >= %d", carried, len(payload))
	}
	got := reassemble(t, frags, 3)
	if !bytes.Equal(got, payload) {
		t.Fatal("compressed round trip mismatch")
	}
}

func TestIncompressibleSkipsCompression(t *testing.T) {
	payload := randomPayload(50000, 9) // random bytes do not compress
	frags, err := Split(payload, Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if frags[0].Compressed {
		t.Fatal("incompressible payload marked compressed")
	}
	got := reassemble(t, frags, 5)
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestSmallPayloadSkipsCompression(t *testing.T) {
	frags, err := Split(compressiblePayload(100), Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if frags[0].Compressed {
		t.Fatal("payload below MinCompressSize compressed")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(data []byte, index, totalRaw uint16) bool {
		total := uint32(totalRaw%100) + 1
		idx := uint32(index) % total
		frags, err := Split(data, Config{FragmentSize: 64})
		if err != nil || len(frags) == 0 {
			return false
		}
		_ = idx
		for _, orig := range frags {
			got, err := Decode(Encode(orig))
			if err != nil {
				return false
			}
			if got.SetID != orig.SetID || got.Index != orig.Index ||
				got.Total != orig.Total || !bytes.Equal(got.Data, orig.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	frags, _ := Split([]byte("hello fragment world"), Config{FragmentSize: 8})
	blob := Encode(frags[0])
	blob[len(blob)-1] ^= 0xFF // flip a data byte; checksum must catch it
	if _, err := Decode(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if _, err := Decode(blob[:3]); err == nil {
		t.Fatal("truncated fragment accepted")
	}
}

func TestDecodeRejectsInconsistentIndex(t *testing.T) {
	frags, _ := Split([]byte("x"), Config{})
	f := *frags[0]
	f.Index = 5 // beyond Total=1
	if _, err := Decode(Encode(&f)); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestCoalescerDuplicatesIgnored(t *testing.T) {
	frags, _ := Split(randomPayload(1000, 2), Config{FragmentSize: 256})
	c := NewCoalescer(0, nil)
	for i := 0; i < 3; i++ {
		if _, done, err := c.Add(frags[0]); err != nil || done {
			t.Fatalf("dup add %d: done=%v err=%v", i, done, err)
		}
	}
	for _, f := range frags[1:] {
		if _, done, _ := c.Add(f); done {
			payload, _, _ := []byte(nil), false, error(nil)
			_ = payload
		}
	}
	// Re-add the full set in order and ensure it completes exactly once.
	frags2, _ := Split(randomPayload(1000, 3), Config{FragmentSize: 256})
	completions := 0
	for _, f := range frags2 {
		if _, done, err := c.Add(f); err != nil {
			t.Fatal(err)
		} else if done {
			completions++
		}
	}
	if completions != 1 {
		t.Fatalf("completions = %d, want 1", completions)
	}
}

func TestCoalescerInterleavedSets(t *testing.T) {
	a, _ := Split(randomPayload(5000, 4), Config{FragmentSize: 512})
	b, _ := Split(randomPayload(5000, 5), Config{FragmentSize: 512})
	c := NewCoalescer(0, nil)
	doneCount := 0
	for i := 0; i < len(a); i++ {
		if _, done, err := c.Add(a[i]); err != nil {
			t.Fatal(err)
		} else if done {
			doneCount++
		}
		if _, done, err := c.Add(b[i]); err != nil {
			t.Fatal(err)
		} else if done {
			doneCount++
		}
	}
	if doneCount != 2 {
		t.Fatalf("completed %d sets, want 2", doneCount)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after completion", c.Pending())
	}
}

func TestCoalescerMismatchedMetadata(t *testing.T) {
	frags, _ := Split(randomPayload(2000, 6), Config{FragmentSize: 512})
	c := NewCoalescer(0, nil)
	if _, _, err := c.Add(frags[0]); err != nil {
		t.Fatal(err)
	}
	bad := *frags[1]
	bad.Total = 99
	if _, _, err := c.Add(&bad); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestCoalescerExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := NewCoalescer(10*time.Second, clock)
	frags, _ := Split(randomPayload(2000, 7), Config{FragmentSize: 512})
	if _, _, err := c.Add(frags[0]); err != nil {
		t.Fatal(err)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
	now = now.Add(time.Minute)
	// Any Add triggers eviction of the stale set.
	other, _ := Split([]byte("tiny"), Config{})
	if _, done, err := c.Add(other[0]); err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if c.Pending() != 0 {
		t.Fatalf("stale set survived eviction: pending=%d", c.Pending())
	}
	// Completing the evicted set now requires all fragments again.
	for i, f := range frags {
		_, done, err := c.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if done != (i == len(frags)-1) {
			t.Fatalf("done=%v at %d", done, i)
		}
	}
}

func BenchmarkSplit(b *testing.B) {
	payload := randomPayload(256*1024, 1)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Split(payload, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitCompress(b *testing.B) {
	payload := compressiblePayload(256 * 1024)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Split(payload, Config{Compress: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoalesce(b *testing.B) {
	payload := randomPayload(256*1024, 2)
	frags, _ := Split(payload, Config{})
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCoalescer(0, nil)
		for _, f := range frags {
			if _, _, err := c.Add(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}
