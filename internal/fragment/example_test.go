package fragment_test

import (
	"bytes"
	"fmt"

	"narada/internal/fragment"
)

func Example() {
	dataset := bytes.Repeat([]byte("sensor-reading;"), 10000)
	frags, _ := fragment.Split(dataset, fragment.Config{
		Compress:     true,
		FragmentSize: 4096,
	})

	co := fragment.NewCoalescer(0, nil)
	var rebuilt []byte
	for _, f := range frags {
		// In production each fragment is published as one event and
		// decoded on arrival; here we feed them straight through.
		decoded, _ := fragment.Decode(fragment.Encode(f))
		if payload, done, _ := co.Add(decoded); done {
			rebuilt = payload
		}
	}
	fmt.Println(bytes.Equal(rebuilt, dataset))
	// Output: true
}
