// Package supervise keeps long-lived relationships alive. The fabric's
// broker links and BDN registrations are established exactly once by nature
// of their dial calls, yet the paper assumes brokers "maintain active
// concurrent connections" for the lifetime of the network — after a
// heartbeat teardown, a peer restart or a healed partition the relationship
// must come back by itself. A Runner owns one such relationship: it redials
// with capped exponential backoff and jitter, trips a per-target circuit
// breaker under sustained failure, honours an optional give-up policy, and
// reports its health through a small state machine
// (connected → degraded → reconnecting) that callers can wire into gauges.
package supervise

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"narada/internal/ntptime"
	"narada/internal/obs"
)

// State is a runner's connection health.
type State int32

// Runner states. Connected means a live session; Degraded means the session
// just died and a redial is imminent; Reconnecting means dial attempts are
// failing and the runner is backing off; Stopped means the runner exited
// (Stop was called or the give-up policy triggered).
const (
	Connected State = iota
	Degraded
	Reconnecting
	Stopped
)

// String renders the state for logs and gauges.
func (s State) String() string {
	switch s {
	case Connected:
		return "connected"
	case Degraded:
		return "degraded"
	case Reconnecting:
		return "reconnecting"
	default:
		return "stopped"
	}
}

// Policy parameterises the retry behaviour. The zero value is NOT a valid
// enabled policy — callers decide separately whether to supervise at all —
// but any zero field falls back to the documented default.
type Policy struct {
	// BaseBackoff is the delay before the first redial after a failure or a
	// session death (default 100ms). A dead session always waits at least
	// this long, so an instantly-dying flap cannot become a hot loop.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential ladder (default 30s).
	MaxBackoff time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// Jitter is the ± fractional randomization applied to every wait
	// (default 0.2), decorrelating redial storms after a shared fault.
	Jitter float64
	// MaxAttempts gives up after that many consecutive dial failures
	// (0 = retry forever). A successful session resets the count.
	MaxAttempts int
	// BreakerThreshold opens the circuit breaker after that many
	// consecutive failures (0 = no breaker): the runner rests for
	// BreakerCooldown instead of the capped backoff, then retries
	// half-open with the ladder reset to BaseBackoff.
	BreakerThreshold int
	// BreakerCooldown is the open-breaker rest period (default 4×MaxBackoff).
	BreakerCooldown time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 30 * time.Second
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 4 * p.MaxBackoff
	}
	return p
}

// RunnerConfig assembles a Runner.
type RunnerConfig struct {
	// Target names the supervised relationship (peer address), for logs and
	// state-gauge labels.
	Target string
	// Policy is the retry behaviour; zero fields use defaults.
	Policy Policy
	// Clock drives all waits (model time in the simulator).
	Clock ntptime.Clock
	// Dial establishes one session. It returns a channel that closes when
	// the session ends; the runner then redials. Dial must be safe to call
	// repeatedly.
	Dial func() (done <-chan struct{}, err error)
	// Initial, when non-nil, is an already-established session: the runner
	// starts Connected and supervises it without dialing first.
	Initial <-chan struct{}
	// Logger receives reconnection events; nil discards them.
	Logger *slog.Logger
	// OnState observes state transitions (telemetry gauges). Called from
	// the runner goroutine; keep it fast.
	OnState func(State)
	// OnAttempt observes every dial attempt's outcome (telemetry counters).
	OnAttempt func(success bool)
	// Journal, when set, records reconnect_attempt and reconnect_gaveup
	// events for the control-plane timeline. Emission is off every hot
	// path: one mutex hold per dial attempt.
	Journal *obs.Journal
}

// Runner supervises one connection. Create with New, drive with Run (which
// blocks until Stop or give-up), interrogate concurrently via State and the
// counters.
type Runner struct {
	cfg RunnerConfig

	state        atomic.Int32
	attempts     atomic.Uint64
	successes    atomic.Uint64
	breakerTrips atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New assembles a runner; call Run (usually on its own goroutine) to start.
func New(cfg RunnerConfig) *Runner {
	cfg.Policy = cfg.Policy.withDefaults()
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	r := &Runner{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if cfg.Initial != nil {
		r.state.Store(int32(Connected))
	} else {
		r.state.Store(int32(Reconnecting))
	}
	return r
}

// State returns the runner's current health.
func (r *Runner) State() State { return State(r.state.Load()) }

// Attempts returns the number of dial attempts performed.
func (r *Runner) Attempts() uint64 { return r.attempts.Load() }

// Successes returns the number of dial attempts that produced a session.
func (r *Runner) Successes() uint64 { return r.successes.Load() }

// BreakerTrips returns how often the circuit breaker opened.
func (r *Runner) BreakerTrips() uint64 { return r.breakerTrips.Load() }

// Target returns the supervised target's name.
func (r *Runner) Target() string { return r.cfg.Target }

// Stop asks the runner to exit; it returns immediately. Safe to call more
// than once and before Run.
func (r *Runner) Stop() { r.stopOnce.Do(func() { close(r.stop) }) }

// Done is closed when Run has returned.
func (r *Runner) Done() <-chan struct{} { return r.done }

func (r *Runner) setState(s State) {
	if State(r.state.Swap(int32(s))) == s {
		return
	}
	if r.cfg.OnState != nil {
		r.cfg.OnState(s)
	}
}

// jittered randomizes d by ±Policy.Jitter.
func (r *Runner) jittered(d time.Duration) time.Duration {
	j := r.cfg.Policy.Jitter
	if j == 0 {
		return d
	}
	return time.Duration(float64(d) * (1 + j*(2*rand.Float64()-1))) //nolint:gosec
}

// Run supervises the connection until Stop or give-up. It blocks; start it
// on a dedicated goroutine.
func (r *Runner) Run() {
	defer close(r.done)
	defer r.setState(Stopped)
	p := r.cfg.Policy
	session := r.cfg.Initial
	failures := 0
	backoff := p.BaseBackoff
	for {
		if session != nil {
			r.setState(Connected)
			select {
			case <-session:
				// Session died: wait at least the base backoff before the
				// redial so an instantly-dying flap cannot spin hot.
				r.setState(Degraded)
				r.cfg.Logger.Info("supervised session died", "target", r.cfg.Target)
				session = nil
				failures, backoff = 0, p.BaseBackoff
				if !r.sleep(r.jittered(p.BaseBackoff)) {
					return
				}
			case <-r.stop:
				return
			}
		}
		select {
		case <-r.stop:
			return
		default:
		}
		r.attempts.Add(1)
		s, err := r.cfg.Dial()
		if r.cfg.OnAttempt != nil {
			r.cfg.OnAttempt(err == nil)
		}
		if err == nil {
			r.cfg.Journal.Emit(obs.EventReconnectAttempt, r.cfg.Target, "ok")
		} else {
			r.cfg.Journal.Emit(obs.EventReconnectAttempt, r.cfg.Target, "fail: "+err.Error())
		}
		if err == nil {
			r.successes.Add(1)
			failures, backoff = 0, p.BaseBackoff
			session = s
			r.cfg.Logger.Info("supervised session established", "target", r.cfg.Target)
			continue
		}
		failures++
		r.setState(Reconnecting)
		if p.MaxAttempts > 0 && failures >= p.MaxAttempts {
			r.cfg.Logger.Warn("supervision giving up",
				"target", r.cfg.Target, "failures", failures, "err", err)
			r.cfg.Journal.Emit(obs.EventReconnectGaveup, r.cfg.Target,
				fmt.Sprintf("failures=%d", failures))
			return
		}
		wait := r.jittered(backoff)
		if p.BreakerThreshold > 0 && failures%p.BreakerThreshold == 0 {
			// Sustained failure: open the breaker, rest, then half-open with
			// the ladder reset so recovery probes start gently again.
			r.breakerTrips.Add(1)
			wait = r.jittered(p.BreakerCooldown)
			backoff = p.BaseBackoff
			r.cfg.Logger.Warn("supervision breaker open",
				"target", r.cfg.Target, "failures", failures, "cooldown", p.BreakerCooldown)
		} else {
			backoff = time.Duration(float64(backoff) * p.Multiplier)
			if backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
		}
		r.cfg.Logger.Debug("supervised dial failed",
			"target", r.cfg.Target, "failures", failures, "retry-in", wait, "err", err)
		if !r.sleep(wait) {
			return
		}
	}
}

// sleep waits d on the runner's clock; false means Stop fired first.
func (r *Runner) sleep(d time.Duration) bool {
	select {
	case <-r.cfg.Clock.After(d):
		return true
	case <-r.stop:
		return false
	}
}
