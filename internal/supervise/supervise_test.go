package supervise

import (
	"errors"
	"sync"
	"testing"
	"time"

	"narada/internal/ntptime"
)

// fastPolicy keeps waits tiny so tests run on the wall clock.
func fastPolicy() Policy {
	return Policy{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.1,
	}
}

// fakeEndpoint scripts dial outcomes: each element of plan is the error for
// one attempt (nil = success). Sessions stay open until killSession.
type fakeEndpoint struct {
	mu       sync.Mutex
	plan     []error
	attempts int
	sessions []chan struct{}
}

func (f *fakeEndpoint) dial() (<-chan struct{}, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var err error
	if f.attempts < len(f.plan) {
		err = f.plan[f.attempts]
	}
	f.attempts++
	if err != nil {
		return nil, err
	}
	s := make(chan struct{})
	f.sessions = append(f.sessions, s)
	return s, nil
}

func (f *fakeEndpoint) killSession(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	close(f.sessions[i])
}

func (f *fakeEndpoint) sessionCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sessions)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRunnerRedialsAfterSessionDeath(t *testing.T) {
	ep := &fakeEndpoint{}
	var states []State
	var mu sync.Mutex
	r := New(RunnerConfig{
		Target: "peer",
		Policy: fastPolicy(),
		Clock:  ntptime.SystemClock{},
		Dial:   ep.dial,
		OnState: func(s State) {
			mu.Lock()
			states = append(states, s)
			mu.Unlock()
		},
	})
	go r.Run()
	defer func() { r.Stop(); <-r.Done() }()

	waitFor(t, "first session", func() bool { return ep.sessionCount() == 1 })
	waitFor(t, "connected", func() bool { return r.State() == Connected })
	ep.killSession(0)
	waitFor(t, "second session", func() bool { return ep.sessionCount() == 2 })
	waitFor(t, "reconnected", func() bool { return r.State() == Connected })

	if got := r.Successes(); got != 2 {
		t.Fatalf("successes = %d, want 2", got)
	}
	mu.Lock()
	defer mu.Unlock()
	// The death must have been observable: Degraded appears between the two
	// Connected transitions.
	sawDegraded := false
	for _, s := range states {
		if s == Degraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatalf("state transitions %v never passed through Degraded", states)
	}
}

func TestRunnerBacksOffThroughFailures(t *testing.T) {
	errDown := errors.New("down")
	ep := &fakeEndpoint{plan: []error{errDown, errDown, errDown}}
	r := New(RunnerConfig{
		Target: "peer",
		Policy: fastPolicy(),
		Clock:  ntptime.SystemClock{},
		Dial:   ep.dial,
	})
	go r.Run()
	defer func() { r.Stop(); <-r.Done() }()

	waitFor(t, "session after failures", func() bool { return ep.sessionCount() == 1 })
	if got := r.Attempts(); got < 4 {
		t.Fatalf("attempts = %d, want >= 4 (3 failures + success)", got)
	}
	if r.State() != Connected {
		t.Fatalf("state = %v, want Connected", r.State())
	}
}

func TestRunnerGivesUpAtMaxAttempts(t *testing.T) {
	errDown := errors.New("down")
	ep := &fakeEndpoint{plan: []error{errDown, errDown, errDown, errDown, errDown, errDown}}
	p := fastPolicy()
	p.MaxAttempts = 3
	r := New(RunnerConfig{
		Target: "peer",
		Policy: p,
		Clock:  ntptime.SystemClock{},
		Dial:   ep.dial,
	})
	done := make(chan struct{})
	go func() { r.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("runner did not give up")
	}
	if got := r.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want exactly 3", got)
	}
	if r.State() != Stopped {
		t.Fatalf("state = %v, want Stopped", r.State())
	}
}

func TestRunnerBreakerTripsAndRecovers(t *testing.T) {
	errDown := errors.New("down")
	ep := &fakeEndpoint{plan: []error{errDown, errDown, errDown, errDown}}
	p := fastPolicy()
	p.BreakerThreshold = 2
	p.BreakerCooldown = 2 * time.Millisecond
	r := New(RunnerConfig{
		Target: "peer",
		Policy: p,
		Clock:  ntptime.SystemClock{},
		Dial:   ep.dial,
	})
	go r.Run()
	defer func() { r.Stop(); <-r.Done() }()

	waitFor(t, "session after breaker", func() bool { return ep.sessionCount() == 1 })
	if got := r.BreakerTrips(); got != 2 {
		t.Fatalf("breaker trips = %d, want 2 (4 failures / threshold 2)", got)
	}
}

func TestRunnerSupervisesInitialSession(t *testing.T) {
	initial := make(chan struct{})
	ep := &fakeEndpoint{}
	r := New(RunnerConfig{
		Target:  "peer",
		Policy:  fastPolicy(),
		Clock:   ntptime.SystemClock{},
		Dial:    ep.dial,
		Initial: initial,
	})
	if r.State() != Connected {
		t.Fatalf("initial state = %v, want Connected", r.State())
	}
	go r.Run()
	defer func() { r.Stop(); <-r.Done() }()

	// No dialing while the initial session is healthy.
	time.Sleep(10 * time.Millisecond)
	if got := r.Attempts(); got != 0 {
		t.Fatalf("attempts = %d before initial session died, want 0", got)
	}
	close(initial)
	waitFor(t, "redial after initial death", func() bool { return ep.sessionCount() == 1 })
}

func TestRunnerStopsCleanly(t *testing.T) {
	ep := &fakeEndpoint{}
	r := New(RunnerConfig{
		Target: "peer",
		Policy: fastPolicy(),
		Clock:  ntptime.SystemClock{},
		Dial:   ep.dial,
	})
	go r.Run()
	waitFor(t, "session", func() bool { return ep.sessionCount() == 1 })
	r.Stop()
	select {
	case <-r.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("runner did not stop")
	}
	if r.State() != Stopped {
		t.Fatalf("state = %v, want Stopped", r.State())
	}
	// Stop is idempotent.
	r.Stop()
}

func TestRunnerStopDuringBackoff(t *testing.T) {
	errDown := errors.New("down")
	ep := &fakeEndpoint{plan: []error{errDown, errDown, errDown, errDown, errDown}}
	p := fastPolicy()
	p.BaseBackoff = time.Hour // Stop must interrupt this wait.
	p.MaxBackoff = time.Hour
	r := New(RunnerConfig{
		Target: "peer",
		Policy: p,
		Clock:  ntptime.SystemClock{},
		Dial:   ep.dial,
	})
	go r.Run()
	waitFor(t, "first failure", func() bool { return r.Attempts() >= 1 })
	r.Stop()
	select {
	case <-r.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not interrupt the backoff sleep")
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.BaseBackoff != 100*time.Millisecond || p.MaxBackoff != 30*time.Second {
		t.Fatalf("backoff defaults wrong: %+v", p)
	}
	if p.Multiplier != 2 || p.Jitter != 0.2 {
		t.Fatalf("growth defaults wrong: %+v", p)
	}
	if p.BreakerCooldown != 4*p.MaxBackoff {
		t.Fatalf("breaker cooldown default wrong: %+v", p)
	}
	// MaxBackoff never drops below BaseBackoff.
	p = Policy{BaseBackoff: time.Minute, MaxBackoff: time.Second}.withDefaults()
	if p.MaxBackoff != time.Minute {
		t.Fatalf("MaxBackoff = %v, want clamped to BaseBackoff", p.MaxBackoff)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Connected: "connected", Degraded: "degraded",
		Reconnecting: "reconnecting", Stopped: "stopped",
	} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
