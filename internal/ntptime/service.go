package ntptime

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Paper-specified envelopes.
const (
	// MinResidual / MaxResidual bound the post-synchronisation clock error:
	// "every node in NaradaBrokering is within 1-20 msecs of each other".
	MinResidual = 1 * time.Millisecond
	MaxResidual = 20 * time.Millisecond

	// MinInit / MaxInit bound the synchronisation start-up delay: "generally
	// take between 3-5 seconds before the local clock offsets are computed".
	MinInit = 3 * time.Second
	MaxInit = 5 * time.Second
)

// ErrNotSynchronized is returned by UTC before initialization completes.
var ErrNotSynchronized = errors.New("ntptime: service not yet synchronized")

// Service models a node's NTP client. It owns the node's (possibly skewed)
// local clock and, once initialized, serves UTC timestamps whose error
// against true time lies within the paper's 1-20 ms envelope.
//
// In a simulation the "true" offset is known (the SkewedClock's skew) and the
// Service estimates it imperfectly; against the system clock the offset is
// zero and the residual models the quality of a real NTP peering.
type Service struct {
	local Clock

	mu       sync.Mutex
	synced   bool
	estimate time.Duration // estimated local-clock offset from UTC
	residual time.Duration // signed estimation error, for introspection
	initTook time.Duration
}

// NewService creates an NTP service for a node with the given local clock.
// trueSkew is the actual offset of the local clock from UTC (the skew of a
// SkewedClock, or 0 for an honest clock). rng drives the simulated residual
// error and initialization time; a nil rng uses a fixed mid-range residual.
func NewService(local Clock, trueSkew time.Duration, rng *rand.Rand) *Service {
	s := &Service{local: local}
	s.plan(trueSkew, rng)
	return s
}

func (s *Service) plan(trueSkew time.Duration, rng *rand.Rand) {
	residual := (MinResidual + MaxResidual) / 2
	initTook := (MinInit + MaxInit) / 2
	if rng != nil {
		span := int64(MaxResidual - MinResidual)
		residual = MinResidual + time.Duration(rng.Int63n(span+1))
		if rng.Intn(2) == 0 {
			residual = -residual
		}
		initSpan := int64(MaxInit - MinInit)
		initTook = MinInit + time.Duration(rng.Int63n(initSpan+1))
	}
	s.mu.Lock()
	// The service's estimate of its own skew misses the truth by residual;
	// corrected time therefore errs from UTC by exactly -residual.
	s.estimate = trueSkew + residual
	s.residual = residual
	s.initTook = initTook
	s.mu.Unlock()
}

// Init blocks for the simulated 3-5 s synchronisation delay (in the local
// clock's timescale) and then marks the service synchronized. It is intended
// to be run from the node's start-up goroutine.
func (s *Service) Init() {
	s.mu.Lock()
	took := s.initTook
	s.mu.Unlock()
	s.local.Sleep(took)
	s.mu.Lock()
	s.synced = true
	s.mu.Unlock()
}

// InitImmediately marks the service synchronized without the start-up delay;
// used by tests and by experiments that begin after the warm-up phase.
func (s *Service) InitImmediately() {
	s.mu.Lock()
	s.synced = true
	s.mu.Unlock()
}

// Synchronized reports whether offsets have been computed.
func (s *Service) Synchronized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.synced
}

// UTC returns the NTP-corrected current time. Before synchronisation it
// returns the uncorrected local time along with ErrNotSynchronized.
func (s *Service) UTC() (time.Time, error) {
	s.mu.Lock()
	synced, est := s.synced, s.estimate
	s.mu.Unlock()
	if !synced {
		return s.local.Now(), ErrNotSynchronized
	}
	return s.local.Now().Add(-est), nil
}

// MustUTC is UTC for callers that have ensured synchronisation.
func (s *Service) MustUTC() time.Time {
	t, err := s.UTC()
	if err != nil {
		panic(err)
	}
	return t
}

// Residual returns the signed error of the corrected clock against true UTC.
// Exposed so experiments can verify the 1-20 ms envelope holds.
func (s *Service) Residual() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return -s.residual
}

// Offset returns the service's current estimate of the local clock's offset
// from UTC: local time minus Offset() is this node's best-effort UTC. Before
// synchronisation it returns 0 — matching UTC(), which serves uncorrected
// local time until the offsets are computed. Telemetry exporters ship this
// value with every packet so a collector can align span timestamps recorded
// on 1-20 ms-skewed node clocks onto one fabric-wide timeline.
func (s *Service) Offset() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.synced {
		return 0
	}
	return s.estimate
}

// Local returns the node's local clock (used for interval timing, which must
// not jump when offsets are re-estimated).
func (s *Service) Local() Clock { return s.local }

// InitDuration returns the simulated synchronisation delay.
func (s *Service) InitDuration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.initTook
}
