// Package ntptime provides the time substrate the discovery scheme depends
// on. The paper: "Timestamps in NaradaBrokering are based on the Network Time
// Protocol (NTP) which ensures that every node in NaradaBrokering is within
// 1-20 msecs of each other. NTP services at nodes are initialized during node
// initializations and generally take between 3-5 seconds before the local
// clock offsets are computed."
//
// Three pieces live here:
//
//   - Clock: the abstraction every other package tells time through, so the
//     same broker/BDN/discovery code runs against the wall clock or against
//     the simulator's scaled model clock.
//   - SkewedClock: a per-node clock offset from its base by a fixed error,
//     modelling unsynchronised hardware clocks.
//   - Service: the NTP-style synchronisation service that estimates a node's
//     offset and exposes corrected UTC timestamps with a residual error in
//     the paper's 1-20 ms envelope.
package ntptime

import (
	"runtime"
	"sync"
	"time"
)

// Clock tells time and sleeps. Durations passed to Sleep/After are in the
// clock's own timescale ("model time" for simulated clocks).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers this clock's time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// SystemClock is the wall clock; the zero value is ready to use.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (SystemClock) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (SystemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ScaledClock runs model time faster than wall time by a constant factor, so
// experiments whose model windows span multiple seconds (the paper's 4-5 s
// response-collection window) complete in milliseconds of wall time.
// A ScaledClock with Scale 1 behaves like the wall clock.
type ScaledClock struct {
	epochWall  time.Time
	epochModel time.Time
	scale      float64
}

// NewScaledClock returns a clock whose model time starts at epoch and
// advances scale model-seconds per wall second. scale <= 0 is treated as 1.
func NewScaledClock(epoch time.Time, scale float64) *ScaledClock {
	if scale <= 0 {
		scale = 1
	}
	return &ScaledClock{epochWall: time.Now(), epochModel: epoch, scale: scale}
}

// Scale returns the model-seconds-per-wall-second factor.
func (c *ScaledClock) Scale() float64 { return c.scale }

// Now implements Clock.
func (c *ScaledClock) Now() time.Time {
	elapsed := time.Since(c.epochWall)
	return c.epochModel.Add(time.Duration(float64(elapsed) * c.scale))
}

// Sleep implements Clock; d is model time.
func (c *ScaledClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.sleepWall(c.wall(d))
}

// After implements Clock; d is model time and the delivered value is model
// time.
func (c *ScaledClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		c.sleepWall(c.wall(d))
		ch <- c.Now()
	}()
	return ch
}

func (c *ScaledClock) wall(model time.Duration) time.Duration {
	return time.Duration(float64(model) / c.scale)
}

// sleepWall sleeps for a wall duration. At scale > 1, time.Sleep's ~1 ms
// granularity would be amplified into large model-time errors, so the final
// stretch is finished with a yielding spin, giving microsecond precision.
func (c *ScaledClock) sleepWall(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.scale == 1 {
		time.Sleep(d)
		return
	}
	const spinFloor = 2 * time.Millisecond
	deadline := time.Now().Add(d)
	if d > spinFloor {
		time.Sleep(d - spinFloor)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// SkewedClock offsets a base clock by a fixed skew, modelling a node whose
// hardware clock disagrees with true time. Sleeping is delegated unchanged.
type SkewedClock struct {
	base Clock
	skew time.Duration
}

// NewSkewedClock wraps base so that Now() = base.Now() + skew.
func NewSkewedClock(base Clock, skew time.Duration) *SkewedClock {
	return &SkewedClock{base: base, skew: skew}
}

// Skew returns the configured offset from the base clock.
func (c *SkewedClock) Skew() time.Duration { return c.skew }

// Now implements Clock.
func (c *SkewedClock) Now() time.Time { return c.base.Now().Add(c.skew) }

// Sleep implements Clock.
func (c *SkewedClock) Sleep(d time.Duration) { c.base.Sleep(d) }

// After implements Clock.
func (c *SkewedClock) After(d time.Duration) <-chan time.Time {
	out := make(chan time.Time, 1)
	in := c.base.After(d)
	go func() { out <- (<-in).Add(c.skew) }()
	return out
}

// ManualClock is a test clock advanced explicitly with Advance. Sleepers and
// After-waiters are released when the clock passes their deadline.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewManualClock returns a ManualClock reading start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, waking any due waiters.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	remaining := c.waiters[:0]
	var due []waiter
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waiters = remaining
	c.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// Sleep implements Clock; it blocks until Advance moves past the deadline.
func (c *ManualClock) Sleep(d time.Duration) { <-c.After(d) }

// After implements Clock.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	at := c.now.Add(d)
	if d <= 0 {
		now := c.now
		c.mu.Unlock()
		ch <- now
		return ch
	}
	c.waiters = append(c.waiters, waiter{at: at, ch: ch})
	c.mu.Unlock()
	return ch
}
