package ntptime

import (
	"math/rand"
	"testing"
	"time"
)

func TestSystemClockMonotonicEnough(t *testing.T) {
	var c SystemClock
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Fatalf("time did not advance: %v -> %v", a, b)
	}
}

func TestScaledClockAdvancesFaster(t *testing.T) {
	epoch := time.Date(2005, 7, 1, 0, 0, 0, 0, time.UTC)
	c := NewScaledClock(epoch, 100)
	start := c.Now()
	time.Sleep(20 * time.Millisecond)
	elapsed := c.Now().Sub(start)
	// 20 ms wall at 100x should be ~2 s model time; allow generous slop.
	if elapsed < 1*time.Second || elapsed > 10*time.Second {
		t.Fatalf("model elapsed = %v, want about 2s", elapsed)
	}
}

func TestScaledClockSleepModelTime(t *testing.T) {
	c := NewScaledClock(time.Unix(0, 0), 1000)
	wallStart := time.Now()
	c.Sleep(1 * time.Second) // should take ~1ms wall
	if wall := time.Since(wallStart); wall > 200*time.Millisecond {
		t.Fatalf("scaled sleep took %v wall, want ~1ms", wall)
	}
}

func TestScaledClockAfterDeliversModelTime(t *testing.T) {
	c := NewScaledClock(time.Unix(0, 0), 1000)
	before := c.Now()
	got := <-c.After(500 * time.Millisecond)
	if got.Sub(before) < 400*time.Millisecond {
		t.Fatalf("After fired early: %v after start", got.Sub(before))
	}
}

func TestScaledClockDefaultsScale(t *testing.T) {
	c := NewScaledClock(time.Unix(0, 0), -3)
	if c.Scale() != 1 {
		t.Fatalf("Scale = %v, want 1", c.Scale())
	}
}

func TestSkewedClock(t *testing.T) {
	base := NewManualClock(time.Unix(1000, 0))
	skew := 15 * time.Millisecond
	c := NewSkewedClock(base, skew)
	if got := c.Now().Sub(base.Now()); got != skew {
		t.Fatalf("skew observed %v, want %v", got, skew)
	}
	if c.Skew() != skew {
		t.Fatalf("Skew() = %v", c.Skew())
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	done := make(chan time.Time, 1)
	go func() { done <- <-c.After(10 * time.Second) }()
	time.Sleep(5 * time.Millisecond) // let the waiter register
	c.Advance(9 * time.Second)
	select {
	case <-done:
		t.Fatal("After fired before its deadline")
	default:
	}
	c.Advance(2 * time.Second)
	select {
	case at := <-done:
		if at.Before(time.Unix(10, 0)) {
			t.Fatalf("woke at %v, want >= 10s", at)
		}
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
}

func TestManualClockZeroDelay(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestServiceResidualEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		skew := time.Duration(rng.Int63n(int64(40*time.Millisecond))) - 20*time.Millisecond
		base := NewManualClock(time.Unix(5000, 0))
		s := NewService(NewSkewedClock(base, skew), skew, rng)
		s.InitImmediately()
		res := s.Residual()
		if res < 0 {
			res = -res
		}
		if res < MinResidual || res > MaxResidual {
			t.Fatalf("residual %v outside [%v, %v]", res, MinResidual, MaxResidual)
		}
	}
}

func TestServiceCorrectsSkew(t *testing.T) {
	base := NewManualClock(time.Date(2005, 7, 1, 12, 0, 0, 0, time.UTC))
	skew := 500 * time.Millisecond // gross hardware skew
	local := NewSkewedClock(base, skew)
	s := NewService(local, skew, rand.New(rand.NewSource(7)))
	s.InitImmediately()
	utc, err := s.UTC()
	if err != nil {
		t.Fatal(err)
	}
	errAgainstTruth := utc.Sub(base.Now())
	if errAgainstTruth < 0 {
		errAgainstTruth = -errAgainstTruth
	}
	if errAgainstTruth > MaxResidual {
		t.Fatalf("corrected clock off by %v, want <= %v", errAgainstTruth, MaxResidual)
	}
}

func TestServiceBeforeSync(t *testing.T) {
	base := NewManualClock(time.Unix(0, 0))
	s := NewService(base, 0, nil)
	if s.Synchronized() {
		t.Fatal("freshly created service claims synchronized")
	}
	if _, err := s.UTC(); err != ErrNotSynchronized {
		t.Fatalf("err = %v, want ErrNotSynchronized", err)
	}
}

func TestServiceInitDurationEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		s := NewService(NewManualClock(time.Unix(0, 0)), 0, rng)
		d := s.InitDuration()
		if d < MinInit || d > MaxInit {
			t.Fatalf("init duration %v outside [%v, %v]", d, MinInit, MaxInit)
		}
	}
}

func TestServiceInitBlocksForInitDuration(t *testing.T) {
	// Run Init against a fast scaled clock so the 3-5 s model delay is ms.
	clock := NewScaledClock(time.Unix(0, 0), 1000)
	s := NewService(clock, 0, rand.New(rand.NewSource(3)))
	done := make(chan struct{})
	go func() { s.Init(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Init did not complete")
	}
	if !s.Synchronized() {
		t.Fatal("service not synchronized after Init")
	}
	s.MustUTC() // must not panic
}

func TestTwoNodesWithinPaperBound(t *testing.T) {
	// The property the discovery latency estimator relies on: any two
	// synchronized nodes read UTC within ~2*MaxResidual of each other.
	rng := rand.New(rand.NewSource(11))
	base := NewManualClock(time.Unix(77777, 0))
	mk := func(skew time.Duration) *Service {
		s := NewService(NewSkewedClock(base, skew), skew, rng)
		s.InitImmediately()
		return s
	}
	a, b := mk(300*time.Millisecond), mk(-450*time.Millisecond)
	ta, tb := a.MustUTC(), b.MustUTC()
	diff := ta.Sub(tb)
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*MaxResidual {
		t.Fatalf("nodes disagree by %v, want <= %v", diff, 2*MaxResidual)
	}
}

// TestServiceOffset pins the exporter contract: Offset is 0 before the sync
// completes, and afterwards local.Now().Add(-Offset()) equals the corrected
// UTC() — which is what a collector relies on when aligning span timestamps.
func TestServiceOffset(t *testing.T) {
	base := NewManualClock(time.Date(2005, 7, 1, 12, 0, 0, 0, time.UTC))
	skew := -350 * time.Millisecond
	local := NewSkewedClock(base, skew)
	s := NewService(local, skew, rand.New(rand.NewSource(11)))
	if got := s.Offset(); got != 0 {
		t.Fatalf("pre-sync Offset = %v, want 0", got)
	}
	s.InitImmediately()
	off := s.Offset()
	if off == 0 {
		t.Fatal("post-sync Offset is still 0 despite a 350ms skew")
	}
	utc, err := s.UTC()
	if err != nil {
		t.Fatal(err)
	}
	if aligned := local.Now().Add(-off); !aligned.Equal(utc) {
		t.Fatalf("local - Offset = %v, UTC() = %v; alignment identity broken", aligned, utc)
	}
	// The estimate misses true skew by exactly the residual.
	if miss := off - skew; miss != -s.Residual() {
		t.Fatalf("Offset error vs true skew = %v, want residual %v", miss, -s.Residual())
	}
}
