package bdn

import (
	"narada/internal/obs"
)

// telemetry bundles the BDN's metric handles, resolved once in initTelemetry
// so recording is a single atomic operation. A BDN constructed without a
// registry records into a private throwaway registry, keeping every call site
// branch-free.
type telemetry struct {
	adsStored   *obs.Counter // advertisements admitted and stored
	adsRejected *obs.Counter // advertisements dropped by the admit filter
	adsExpired  *obs.Counter // registrations pruned by the TTL sweeper

	framesMalformed *obs.Counter // inbound frames that failed to decode

	reqAcked  *obs.Counter // discovery requests acknowledged
	reqDup    *obs.Counter // retransmissions suppressed by the dedup cache
	reqDenied *obs.Counter // requests refused for missing credentials

	injects *obs.Counter // per-broker request transmissions

	walAppends   *obs.Counter // records appended to the write-ahead log
	walApplied   *obs.Counter // replicated records applied to the table
	walSnapshots *obs.Counter // snapshots persisted (compaction points)
	walReplayed  *obs.Counter // records replayed during recovery
	walErrors    *obs.Counter // append/snapshot failures

	tracer *obs.Tracer
}

// initTelemetry registers the BDN's metric families on reg (nil gets a
// private registry) and captures the trace recorder. Instance identity rides
// in the bdn="<name>" label so one registry can serve several BDNs.
func (d *BDN) initTelemetry(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	who := obs.L("bdn", d.cfg.Name)
	t := &d.tel
	t.tracer = tracer

	const ads = "narada_bdn_advertisements_total"
	const adsHelp = "Broker advertisements received, by outcome."
	t.adsStored = reg.Counter(ads, adsHelp, who, obs.L("outcome", "stored"))
	t.adsRejected = reg.Counter(ads, adsHelp, who, obs.L("outcome", "rejected"))
	t.adsExpired = reg.Counter(ads, adsHelp, who, obs.L("outcome", "expired"))

	t.framesMalformed = reg.Counter("narada_bdn_frames_malformed_total",
		"Inbound frames that failed to decode and were discarded.", who)

	const reqs = "narada_bdn_requests_total"
	const reqsHelp = "Discovery requests processed, by outcome."
	t.reqAcked = reg.Counter(reqs, reqsHelp, who, obs.L("outcome", "acked"))
	t.reqDup = reg.Counter(reqs, reqsHelp, who, obs.L("outcome", "duplicate"))
	t.reqDenied = reg.Counter(reqs, reqsHelp, who, obs.L("outcome", "denied"))

	t.injects = reg.Counter("narada_bdn_injections_total",
		"Discovery-request transmissions into the broker network.", who)

	const walOps = "narada_bdn_wal_records_total"
	const walOpsHelp = "Durable-registry write-ahead log records, by operation."
	t.walAppends = reg.Counter(walOps, walOpsHelp, who, obs.L("op", "append"))
	t.walApplied = reg.Counter(walOps, walOpsHelp, who, obs.L("op", "apply"))
	t.walReplayed = reg.Counter(walOps, walOpsHelp, who, obs.L("op", "replay"))
	t.walSnapshots = reg.Counter("narada_bdn_wal_snapshots_total",
		"Registry snapshots persisted (WAL compaction points).", who)
	t.walErrors = reg.Counter("narada_bdn_wal_errors_total",
		"WAL append or snapshot failures (registry durability at risk).", who)
	reg.GaugeFunc("narada_bdn_wal_last_index",
		"Highest write-ahead log index appended by this BDN.",
		func() float64 { _, last := d.WALRange(); return float64(last) }, who)

	reg.GaugeFunc("narada_bdn_brokers",
		"Broker advertisements currently stored.",
		func() float64 { return float64(d.BrokerCount()) }, who)

	node := obs.L("node", d.cfg.Name)
	reg.CounterFunc("narada_dedup_hits_total",
		"Duplicate hits in the suppression caches.",
		func() uint64 { h, _ := d.reqDedup.Stats(); return h }, node, obs.L("cache", "request"))
	reg.CounterFunc("narada_dedup_adds_total",
		"Distinct insertions into the suppression caches.",
		func() uint64 { _, a := d.reqDedup.Stats(); return a }, node, obs.L("cache", "request"))

	reg.GaugeFunc("narada_ntptime_offset_seconds",
		"Signed error of the NTP-corrected clock against true UTC.",
		func() float64 { return d.ntp.Residual().Seconds() }, node)
	reg.GaugeFunc("narada_ntptime_synchronized",
		"1 once the NTP service has computed clock offsets.",
		func() float64 {
			if d.ntp.Synchronized() {
				return 1
			}
			return 0
		}, node)
}

// traceEvent records a point event on the request's trace, stamped with this
// BDN's identity and clock. No-op without a tracer.
func (d *BDN) traceEvent(id string, name string, kv ...string) {
	if d.tel.tracer == nil {
		return
	}
	attrs := make([]obs.Attr, 0, 1+len(kv)/2)
	attrs = append(attrs, obs.A("bdn", d.cfg.Name))
	for i := 0; i+1 < len(kv); i += 2 {
		attrs = append(attrs, obs.A(kv[i], kv[i+1]))
	}
	d.tel.tracer.Trace(id).Event(name, d.node.Clock().Now(), attrs...)
}
