package bdn

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"narada/internal/core"
	"narada/internal/simnet"
	"narada/internal/uuid"
)

// restart closes the BDN and brings up a fresh one over the same data
// directory (new sim node, same name/config), as after a process restart.
func (e *env) restart(d *BDN, cfg Config) *BDN {
	e.t.Helper()
	d.Close()
	return e.bdn(cfg)
}

// crash tears the BDN down WITHOUT the graceful final snapshot, so recovery
// has to work from the last periodic snapshot plus the WAL suffix — the
// kill -9 shape.
func (e *env) crash(d *BDN, cfg Config) *BDN {
	e.t.Helper()
	d.mu.Lock()
	p := d.persist
	d.persist = nil
	d.mu.Unlock()
	if p != nil {
		_ = p.log.Close()
	}
	d.Close()
	return e.bdn(cfg)
}

func TestRestartRecoversRegistry(t *testing.T) {
	e := newEnv(t, 40)
	cfg := Config{Name: "durable.org", DataDir: t.TempDir(), AdTTL: time.Hour}
	d := e.bdn(cfg)
	b1 := e.broker(simnet.SiteFSU, "broker-fsu")
	b2 := e.broker(simnet.SiteIndianapolis, "broker-indy")
	if err := b1.RegisterWithBDN(d.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b2.RegisterWithBDN(d.Addr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(500 * time.Millisecond)
	if d.BrokerCount() != 2 {
		t.Fatalf("pre-restart BrokerCount = %d", d.BrokerCount())
	}
	before := d.Brokers()

	d2 := e.restart(d, cfg)
	if d2.BrokerCount() != 2 {
		t.Fatalf("post-restart BrokerCount = %d, want 2", d2.BrokerCount())
	}
	after := d2.Brokers()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("recovered table differs:\n before %+v\n after  %+v", before, after)
	}
	// TTLs must be intact: both registrations carry a live deadline roughly
	// an hour out, not zero and not already lapsed.
	now := d2.node.Clock().Now()
	d2.mu.Lock()
	for logical, r := range d2.brokers {
		if r.expiresAt.IsZero() {
			t.Errorf("%s recovered without a deadline", logical)
		} else if rem := r.expiresAt.Sub(now); rem < 50*time.Minute || rem > time.Hour {
			t.Errorf("%s recovered with remaining %s, want ~1h", logical, rem)
		}
	}
	d2.mu.Unlock()
}

func TestSnapshotReplayEquivalence(t *testing.T) {
	// Snapshot + WAL-suffix replay must rebuild exactly the in-memory store:
	// part of the table lands in the snapshot, the rest only in the log.
	e := newEnv(t, 41)
	cfg := Config{Name: "equiv.org", DataDir: t.TempDir(), AdTTL: time.Hour}
	d := e.bdn(cfg)
	b1 := e.broker(simnet.SiteFSU, "broker-a")
	if err := b1.RegisterWithBDN(d.Addr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	if err := d.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot live only in the WAL suffix.
	b2 := e.broker(simnet.SiteCardiff, "broker-b")
	if err := b2.RegisterWithBDN(d.Addr()); err != nil {
		t.Fatal(err)
	}
	d.SetRequiredCredential([]byte("s3cret"))
	d.SetEpoch(7)
	e.net.Clock().Sleep(300 * time.Millisecond)
	before := d.Brokers()
	if len(before) != 2 {
		t.Fatalf("pre-restart table %v", before)
	}

	// Crash rather than close: recovery must come from the mid-run snapshot
	// plus the WAL suffix, not a graceful final snapshot.
	d2 := e.crash(d, cfg)
	if got := d2.Brokers(); !reflect.DeepEqual(before, got) {
		t.Fatalf("replayed table differs:\n before %+v\n after  %+v", before, got)
	}
	if !bytes.Equal(d2.Credential(), []byte("s3cret")) {
		t.Fatalf("credential not recovered: %q", d2.Credential())
	}
	if d2.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", d2.Epoch())
	}
}

func TestSweepDeleteIsDurable(t *testing.T) {
	e := newEnv(t, 42)
	cfg := Config{Name: "sweep.org", DataDir: t.TempDir(),
		AdTTL: 2 * time.Second, SweepInterval: 200 * time.Millisecond}
	d := e.bdn(cfg)
	b := e.broker(simnet.SiteFSU, "broker-gone")
	if err := b.RegisterWithBDN(d.Addr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	if d.BrokerCount() != 1 {
		t.Fatalf("BrokerCount = %d", d.BrokerCount())
	}
	b.Close() // stop refreshes so the registration ages out
	e.net.Clock().Sleep(5 * time.Second)
	if d.BrokerCount() != 0 {
		t.Fatalf("expired broker still listed (%d)", d.BrokerCount())
	}
	d2 := e.restart(d, cfg)
	if d2.BrokerCount() != 0 {
		t.Fatalf("swept broker resurrected by recovery (%d)", d2.BrokerCount())
	}
}

func TestClockJumpAcrossRestartDoesNotMassSweep(t *testing.T) {
	// Regression for the sweep/restart interaction: deadlines are persisted
	// as remaining-duration against the snapshot's monotonic base, so a
	// clock step (here: an hour of downtime) between crash and restart must
	// NOT sweep the recovered ads — they get their remaining TTL back.
	e := newEnv(t, 43)
	cfg := Config{Name: "jump.org", DataDir: t.TempDir(),
		AdTTL: 10 * time.Second, SweepInterval: 100 * time.Millisecond}
	d := e.bdn(cfg)
	b := e.broker(simnet.SiteFSU, "broker-jump")
	if err := b.RegisterWithBDN(d.Addr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	if d.BrokerCount() != 1 {
		t.Fatalf("BrokerCount = %d", d.BrokerCount())
	}
	d.Close()
	b.Close() // no refreshes during or after the jump

	// The clock leaps an hour while the BDN is down.
	e.net.Clock().Sleep(time.Hour)

	d2 := e.bdn(cfg)
	// Give the sweeper several cycles: with absolute-deadline persistence
	// the recovered ad would be >59min past its deadline and swept at once.
	e.net.Clock().Sleep(time.Second)
	if d2.BrokerCount() != 1 {
		t.Fatalf("clock jump swept recovered registration (count=%d)", d2.BrokerCount())
	}
	// And the rebased deadline still works: with no refreshes the ad ages
	// out after its remaining TTL.
	e.net.Clock().Sleep(15 * time.Second)
	if d2.BrokerCount() != 0 {
		t.Fatal("rebased deadline never expired")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	ad := &core.Advertisement{Broker: core.BrokerInfo{LogicalAddress: "b1", Realm: "x"}}
	payload := core.EncodeAdvertisement(ad)
	cases := [][]byte{
		encodeUpsert(payload, true, 42*time.Second),
		encodeUpsert(payload, false, 0),
		encodeDelete("b1", "expired"),
		encodeCredential([]byte("cred")),
		encodeCredential(nil),
		encodeEpoch(99),
		encodeApplied("gsl.org", 1234),
	}
	for i, b := range cases {
		rec, err := decodeRecord(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		reenc := map[byte]func() []byte{
			recUpsert:     func() []byte { return encodeUpsert(rec.adPayload, rec.hasDeadline, rec.remaining) },
			recDelete:     func() []byte { return encodeDelete(rec.logical, rec.reason) },
			recCredential: func() []byte { return encodeCredential(rec.cred) },
			recEpoch:      func() []byte { return encodeEpoch(rec.epoch) },
			recApplied:    func() []byte { return encodeApplied(rec.source, rec.index) },
		}[rec.typ]()
		if !bytes.Equal(reenc, b) {
			t.Fatalf("case %d: re-encode mismatch", i)
		}
	}
	for _, garbage := range [][]byte{nil, {}, {recVersion}, {recVersion, 99}, {7, recUpsert, 0}} {
		if _, err := decodeRecord(garbage); err == nil {
			t.Fatalf("decodeRecord(%v) accepted garbage", garbage)
		}
	}
}

func TestStateCodecRebasesDeadlines(t *testing.T) {
	base := time.Unix(1000, 0)
	ad := &core.Advertisement{Broker: core.BrokerInfo{LogicalAddress: "b1"}}
	st := &persistState{
		monoBase: base,
		wall:     base,
		epoch:    3,
		credSet:  true,
		cred:     []byte("k"),
		applied:  map[string]uint64{"p": 12},
		ads: []stateAd{{
			payload:     core.EncodeAdvertisement(ad),
			hasDeadline: true,
			remaining:   30 * time.Second,
			distance:    5 * time.Millisecond,
		}},
	}
	got, err := decodeState(encodeState(st))
	if err != nil {
		t.Fatal(err)
	}
	if got.epoch != 3 || !got.credSet || string(got.cred) != "k" || got.applied["p"] != 12 {
		t.Fatalf("decoded header %+v", got)
	}
	if len(got.ads) != 1 || !got.ads[0].hasDeadline || got.ads[0].remaining != 30*time.Second {
		t.Fatalf("decoded ads %+v", got.ads)
	}
	if _, err := decodeState([]byte{0xFF, 0x01}); err == nil {
		t.Fatal("decodeState accepted garbage")
	}
}

func TestApplyReplicatedIsIdempotentAndHookFree(t *testing.T) {
	e := newEnv(t, 44)
	cfg := Config{Name: "apply.org", DataDir: t.TempDir()}
	d := e.bdn(cfg)
	hooked := 0
	d.SetMutationHook(func([]byte) { hooked++ })

	ad := &core.Advertisement{
		Broker:   core.BrokerInfo{LogicalAddress: "replicated-broker"},
		IssuedAt: time.Unix(0, 0),
		TTL:      time.Hour,
	}
	rec := encodeUpsert(core.EncodeAdvertisement(ad), true, time.Hour)
	if err := d.ApplyReplicated("primary", 5, rec); err != nil {
		t.Fatal(err)
	}
	if d.BrokerCount() != 1 {
		t.Fatalf("BrokerCount = %d", d.BrokerCount())
	}
	// Duplicate delivery of the same index is a no-op.
	if err := d.ApplyReplicated("primary", 5, rec); err != nil {
		t.Fatal(err)
	}
	if d.AppliedIndex("primary") != 5 {
		t.Fatalf("AppliedIndex = %d", d.AppliedIndex("primary"))
	}
	if hooked != 0 {
		t.Fatalf("replicated apply fired the mutation hook %d times", hooked)
	}
	// Replicated delete removes it.
	if err := d.ApplyReplicated("primary", 6, encodeDelete("replicated-broker", "expired")); err != nil {
		t.Fatal(err)
	}
	if d.BrokerCount() != 0 {
		t.Fatal("replicated delete ignored")
	}
}

func TestReplicaSnapshotInstallTransfersTable(t *testing.T) {
	e := newEnv(t, 45)
	src := e.bdn(Config{Name: "src.org", DataDir: t.TempDir(), AdTTL: time.Hour})
	b := e.broker(simnet.SiteFSU, "broker-xfer")
	if err := b.RegisterWithBDN(src.Addr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	idx, state := src.ReplicaSnapshot()
	if idx == 0 || len(state) == 0 {
		t.Fatalf("ReplicaSnapshot = (%d, %d bytes)", idx, len(state))
	}

	dst := e.bdn(Config{Name: "dst.org", DataDir: t.TempDir()})
	if err := dst.InstallReplicaState("src.org", idx, state); err != nil {
		t.Fatal(err)
	}
	if dst.BrokerCount() != 1 || dst.Brokers()[0].LogicalAddress != "broker-xfer" {
		t.Fatalf("installed table %v", dst.Brokers())
	}
	if dst.AppliedIndex("src.org") != idx {
		t.Fatalf("AppliedIndex = %d, want %d", dst.AppliedIndex("src.org"), idx)
	}
}

func TestDurableCredentialGatesRequests(t *testing.T) {
	e := newEnv(t, 46)
	cfg := Config{Name: "priv.org", DataDir: t.TempDir(), Private: true,
		RequiredCredential: []byte("old")}
	d := e.bdn(cfg)
	d.SetRequiredCredential([]byte("new"))
	d2 := e.restart(d, cfg)
	if string(d2.Credential()) != "new" {
		t.Fatalf("credential after restart = %q", d2.Credential())
	}
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "client", Credentials: []byte("new")}
	if ack := requestViaBDN(t, e, d2, req); ack == nil {
		t.Fatal("request with durable credential not acked")
	}
}
