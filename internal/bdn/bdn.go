// Package bdn implements Broker Discovery Nodes: "registered nodes that
// facilitate the discovery of brokers within the broker network" (paper §2).
// A BDN stores broker advertisements (optionally filtered by an acceptance
// policy), maintains active connections to one or more brokers, acknowledges
// discovery requests in a timely manner, handles them idempotently, and
// propagates each request into the broker network — either to every
// registered broker (O(N) distribution, the unconnected-topology mode) or
// simultaneously to the closest and farthest brokers as measured by UDP
// pings (paper §4's efficient scheme).
package bdn

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"narada/internal/core"
	"narada/internal/dedup"
	"narada/internal/event"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/topics"
	"narada/internal/transport"
	"narada/internal/uuid"
	"narada/internal/wal"
)

// InjectionPolicy selects how a BDN propagates discovery requests.
type InjectionPolicy int

// Injection policies.
const (
	// InjectAll distributes the request to every registered broker — the
	// paper's unconnected-topology behaviour, "O(N) distribution and would
	// be inefficient".
	InjectAll InjectionPolicy = iota
	// InjectClosestFarthest issues the request "simultaneously to the
	// brokers that are closest and farthest from the BDN", letting the
	// broker network disseminate it onward.
	InjectClosestFarthest
)

// Config parameterises a BDN.
type Config struct {
	// Name identifies the BDN (e.g. "gridservicelocator.org").
	Name string
	// StreamPort binds the request/registration endpoint (0 = auto).
	StreamPort int
	// UDPPort binds the distance-measurement endpoint (0 = auto).
	UDPPort int
	// Policy selects the injection strategy.
	Policy InjectionPolicy
	// InjectOverhead models the BDN's per-injection marshalling and
	// scheduling cost (2005-era Java serialisation and connection
	// handling); it is what makes O(N) distribution visibly inefficient.
	InjectOverhead time.Duration
	// AdmitFilter, when set, decides whether to store an advertisement
	// ("a BDN in the US may be interested only in broker additions in North
	// America"); nil admits everything.
	AdmitFilter func(*core.Advertisement) bool
	// Private marks a private BDN: discovery requests must carry the
	// required credential before the BDN will disseminate them (paper §2.4).
	Private            bool
	RequiredCredential []byte
	// PingWindow bounds broker distance measurement.
	PingWindow time.Duration
	// AdTTL is the registration validity applied to advertisements that do
	// not carry their own TTL; a registration not refreshed within its TTL
	// is pruned so dead brokers stop appearing in target sets. 0 keeps
	// registrations forever (the legacy behaviour).
	AdTTL time.Duration
	// SweepInterval is how often expired registrations are pruned
	// (default 1s). Expired entries are also filtered out of every read
	// between sweeps, so the sweep cadence only bounds memory, not
	// correctness.
	SweepInterval time.Duration
	// DedupCapacity sizes the idempotency cache.
	DedupCapacity int
	// DataDir, when set, makes the registry durable: every table mutation
	// is appended to a write-ahead log under this directory and periodic
	// snapshots capture the full table, so a restart recovers every live
	// advertisement with its remaining TTL instead of forcing a fleet-wide
	// re-registration storm. Empty keeps the legacy in-memory behaviour.
	DataDir string
	// Fsync selects the WAL durability policy (always/interval/never).
	Fsync wal.SyncPolicy
	// SnapshotEvery is how many WAL records accumulate between snapshots
	// (default 1024). Each snapshot prunes the log segments it covers.
	SnapshotEvery int
	// Logger receives operational events; nil discards them.
	Logger *slog.Logger
	// Metrics, when set, receives the BDN's metric families (nil disables
	// exposition; recording stays enabled against a private registry).
	Metrics *obs.Registry
	// Tracer, when set, records per-request discovery trace events.
	Tracer *obs.Tracer
	// Journal, when set, records registration lifecycle events
	// (ad_registered/ad_refreshed/ad_expired/ad_swept) and node start/stop
	// for the fabric event timeline.
	Journal *obs.Journal
}

// DefaultInjectOverhead is the default per-injection cost.
const DefaultInjectOverhead = 40 * time.Millisecond

// registration is one broker known to the BDN.
type registration struct {
	ad        *core.Advertisement
	conn      transport.Conn // live registration connection (nil if topic-learned)
	distance  time.Duration  // measured RTT from the BDN; 0 = unmeasured
	expiresAt time.Time      // refresh deadline; zero = never expires
}

// expired reports whether the registration's refresh deadline has lapsed.
func (r *registration) expired(now time.Time) bool {
	return !r.expiresAt.IsZero() && now.After(r.expiresAt)
}

// BDN is a broker discovery node.
type BDN struct {
	node transport.Node
	ntp  *ntptime.Service
	cfg  Config

	listener transport.Listener
	udp      transport.PacketConn

	mu      sync.Mutex
	brokers map[string]*registration // by broker logical address
	conns   map[transport.Conn]struct{}
	started bool

	// Durable-registry state, all guarded by mu. credential is the runtime
	// private-BDN credential (seeded from Config.RequiredCredential, then
	// durably updatable); epoch is the highest replication election epoch
	// seen; applied tracks per-source replication watermarks; mutHook is
	// fired with every locally-originated WAL record.
	persist    *persistence
	credential []byte
	epoch      uint64
	applied    map[string]uint64
	mutHook    func([]byte)

	reqDedup *dedup.Cache
	tel      telemetry

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New creates a BDN; call Start to begin serving.
func New(node transport.Node, ntp *ntptime.Service, cfg Config) (*BDN, error) {
	if cfg.Name == "" {
		return nil, errors.New("bdn: Name is required")
	}
	if cfg.InjectOverhead < 0 {
		cfg.InjectOverhead = DefaultInjectOverhead
	}
	if cfg.PingWindow <= 0 {
		cfg.PingWindow = 2 * time.Second
	}
	if cfg.DedupCapacity <= 0 {
		cfg.DedupCapacity = dedup.DefaultCapacity
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	cfg.Logger = cfg.Logger.With("bdn", cfg.Name)
	d := &BDN{
		node:       node,
		ntp:        ntp,
		cfg:        cfg,
		brokers:    make(map[string]*registration),
		conns:      make(map[transport.Conn]struct{}),
		reqDedup:   dedup.New(cfg.DedupCapacity),
		credential: cfg.RequiredCredential,
		applied:    make(map[string]uint64),
		closed:     make(chan struct{}),
	}
	d.initTelemetry(cfg.Metrics, cfg.Tracer)
	return d, nil
}

// Start binds the BDN's endpoints and launches its accept loop.
func (d *BDN) Start() error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return errors.New("bdn: already started")
	}
	d.started = true
	d.mu.Unlock()

	// Recover the durable registry before the listeners come up, so no
	// registration or discovery request can observe a half-rebuilt table.
	if err := d.initPersistence(); err != nil {
		return err
	}

	l, err := d.node.Listen(d.cfg.StreamPort)
	if err != nil {
		return fmt.Errorf("bdn %s: listen: %w", d.cfg.Name, err)
	}
	pc, err := d.node.ListenPacket(d.cfg.UDPPort)
	if err != nil {
		_ = l.Close()
		return fmt.Errorf("bdn %s: udp: %w", d.cfg.Name, err)
	}
	d.listener, d.udp = l, pc
	d.cfg.Logger.Info("bdn started", "addr", l.Addr())
	d.cfg.Journal.Emit(obs.EventNodeStart, l.Addr(), "udp="+pc.LocalAddr())
	d.wg.Add(2)
	go d.acceptLoop()
	go d.sweepLoop()
	if d.persist != nil {
		d.wg.Add(1)
		go d.snapshotLoop()
	}
	return nil
}

// sweepLoop periodically prunes registrations whose refresh deadline lapsed,
// so a crashed broker's advertisement ages out instead of being shortlisted
// forever. Reads also filter expired entries, so the sweep only reclaims
// memory and emits the authoritative expiry log/metric.
func (d *BDN) sweepLoop() {
	defer d.wg.Done()
	clock := d.node.Clock()
	for {
		select {
		case <-d.closed:
			return
		case <-clock.After(d.cfg.SweepInterval):
		}
		// Expiry runs on the local node clock — the same base the deadlines
		// were stamped against — never the NTP-corrected wall clock, so an
		// NTP step can't mass-sweep live registrations.
		now := clock.Now()
		d.mu.Lock()
		var expired []string
		for logical, r := range d.brokers {
			if r.expired(now) {
				expired = append(expired, logical)
				delete(d.brokers, logical)
				d.appendRecordLocked(encodeDelete(logical, "expired"))
			}
		}
		d.mu.Unlock()
		for _, logical := range expired {
			d.tel.adsExpired.Inc()
			d.cfg.Logger.Info("registration expired", "broker", logical)
			d.cfg.Journal.Emit(obs.EventAdExpired, logical, "")
		}
		if len(expired) > 0 {
			d.cfg.Journal.Emit(obs.EventAdSwept, d.cfg.Name,
				fmt.Sprintf("expired=%d", len(expired)))
		}
	}
}

// Close stops the BDN.
func (d *BDN) Close() {
	d.closeOnce.Do(func() {
		d.cfg.Journal.Emit(obs.EventNodeStop, d.cfg.Name, "")
		close(d.closed)
		if d.listener != nil {
			_ = d.listener.Close()
		}
		if d.udp != nil {
			_ = d.udp.Close()
		}
		d.mu.Lock()
		for c := range d.conns {
			_ = c.Close()
		}
		d.mu.Unlock()
		d.wg.Wait()
		d.closePersistence()
	})
}

// Addr returns the BDN's stream address (what goes in node config files).
func (d *BDN) Addr() string { return d.listener.Addr() }

// UDPAddr returns the BDN's distance-measurement endpoint address.
func (d *BDN) UDPAddr() string { return d.udp.LocalAddr() }

// Name returns the BDN's name.
func (d *BDN) Name() string { return d.cfg.Name }

// BrokerCount returns the number of stored, unexpired advertisements.
func (d *BDN) BrokerCount() int {
	now := d.node.Clock().Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, r := range d.brokers {
		if !r.expired(now) {
			n++
		}
	}
	return n
}

// Brokers returns the unexpired advertised broker infos, sorted by logical
// address.
func (d *BDN) Brokers() []core.BrokerInfo {
	now := d.node.Clock().Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]core.BrokerInfo, 0, len(d.brokers))
	for _, r := range d.brokers {
		if r.expired(now) {
			continue
		}
		out = append(out, r.ad.Broker)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LogicalAddress < out[j].LogicalAddress })
	return out
}

func (d *BDN) now() time.Time {
	if t, err := d.ntp.UTC(); err == nil {
		return t
	}
	return d.node.Clock().Now()
}

// acceptLoop classifies incoming stream connections by their first event:
// broker registrations (LinkHello) or discovery-request sessions.
func (d *BDN) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.listener.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handleConn(conn)
		}()
	}
}

// trackConn records a live connection so Close can tear it down; it returns
// false when the BDN is already closed (the closed-check and insert share the
// mutex, and Close closes the channel before sweeping, so no connection can
// slip past the sweep).
func (d *BDN) trackConn(conn transport.Conn) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case <-d.closed:
		return false
	default:
	}
	d.conns[conn] = struct{}{}
	return true
}

func (d *BDN) untrackConn(conn transport.Conn) {
	d.mu.Lock()
	delete(d.conns, conn)
	d.mu.Unlock()
}

func (d *BDN) handleConn(conn transport.Conn) {
	if !d.trackConn(conn) {
		_ = conn.Close()
		return
	}
	defer d.untrackConn(conn)
	frame, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	ev, err := event.Decode(frame)
	if err != nil {
		_ = conn.Close()
		return
	}
	switch ev.Type {
	case event.TypeLinkHello:
		d.serveBrokerRegistration(conn)
	case event.TypeDiscoveryRequest:
		d.serveRequester(conn, ev)
	case event.TypeAdvertisement:
		// Bare advertisement without hello (fire-and-forget re-advertise).
		d.storeAdvertisement(ev, nil)
		_ = conn.Close()
	default:
		_ = conn.Close()
	}
}

// serveBrokerRegistration owns a broker's registration connection: it stores
// the advertisement(s) the broker sends and keeps the connection available
// for request injection until the broker disconnects.
func (d *BDN) serveBrokerRegistration(conn transport.Conn) {
	var logical string
	defer func() {
		_ = conn.Close()
		if logical != "" {
			d.mu.Lock()
			if r, ok := d.brokers[logical]; ok && r.conn == conn {
				r.conn = nil
			}
			d.mu.Unlock()
		}
	}()
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		ev, err := event.Decode(frame)
		if err != nil {
			d.tel.framesMalformed.Inc()
			continue
		}
		switch ev.Type {
		case event.TypeAdvertisement:
			if who := d.storeAdvertisement(ev, conn); who != "" {
				logical = who
			}
		case event.TypeLinkHeartbeat:
			// Echo the broker's keepalive so its liveness clock sees inbound
			// traffic; a BDN that stops echoing gets torn down and redialed.
			if conn.Send(frame) != nil {
				return
			}
		}
	}
}

// storeAdvertisement applies the admit filter and records the advertisement.
// It returns the broker's logical address when stored ("" when rejected).
func (d *BDN) storeAdvertisement(ev *event.Event, conn transport.Conn) string {
	ad, err := core.DecodeAdvertisement(ev.Payload)
	if err != nil {
		return ""
	}
	// "Upon receipt of an advertisement at the BDN, this BDN may choose to
	// store the advertisement or ignore it."
	if d.cfg.AdmitFilter != nil && !d.cfg.AdmitFilter(ad) {
		d.tel.adsRejected.Inc()
		return ""
	}
	d.tel.adsStored.Inc()
	// The advertisement's own TTL wins; the BDN's AdTTL covers brokers that
	// do not stamp one. Either way the deadline is measured from receipt on
	// the local node clock — the broker's IssuedAt clock may be skewed, and
	// the NTP-corrected clock may step.
	ttl := ad.TTL
	if ttl <= 0 {
		ttl = d.cfg.AdTTL
	}
	var expiresAt time.Time
	if ttl > 0 {
		expiresAt = d.node.Clock().Now().Add(ttl)
	}
	rec := encodeUpsert(ev.Payload, ttl > 0, ttl)
	d.mu.Lock()
	r, ok := d.brokers[ad.Broker.LogicalAddress]
	if !ok {
		r = &registration{}
		d.brokers[ad.Broker.LogicalAddress] = r
		d.cfg.Journal.Emit(obs.EventAdRegistered, ad.Broker.LogicalAddress,
			fmt.Sprintf("realm=%s ttl=%s", ad.Broker.Realm, ttl))
	} else {
		d.cfg.Journal.Emit(obs.EventAdRefreshed, ad.Broker.LogicalAddress,
			fmt.Sprintf("ttl=%s", ttl))
	}
	r.ad = ad
	r.expiresAt = expiresAt
	if conn != nil {
		r.conn = conn
	}
	d.appendRecordLocked(rec)
	hook := d.mutHook
	d.mu.Unlock()
	if hook != nil {
		// A standby forwards direct registrations to the primary so the
		// whole cluster learns them; fired outside the table lock.
		hook(rec)
	}
	d.cfg.Logger.Info("advertisement stored",
		"broker", ad.Broker.LogicalAddress, "realm", ad.Broker.Realm)
	return ad.Broker.LogicalAddress
}

// serveRequester processes one discovery-request session: acknowledge, check
// private-BDN credentials, and inject the request into the broker network.
// Retransmissions of the same UUID are idempotent — re-acknowledged without
// re-injection.
func (d *BDN) serveRequester(conn transport.Conn, first *event.Event) {
	defer conn.Close() //nolint:errcheck
	ev := first
	for {
		if ev.Type == event.TypeDiscoveryRequest {
			req, err := core.DecodeDiscoveryRequest(ev.Payload)
			if err == nil {
				d.processRequest(conn, ev, req)
			}
		}
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		ev, err = event.Decode(frame)
		if err != nil {
			return
		}
	}
}

func (d *BDN) processRequest(conn transport.Conn, ev *event.Event, req *core.DiscoveryRequest) {
	// "A private BDN must also require the presentation of appropriate
	// credentials before it decides whether it will disseminate the broker
	// discovery request."
	authorized := true
	if cred := d.Credential(); d.cfg.Private && len(cred) > 0 {
		authorized = string(req.Credentials) == string(cred)
	}

	// Normalise trace context: instrumented requesters stamp it on the
	// event; for anyone else it heals here from the request body, so every
	// frame the BDN emits downstream carries it.
	traceID, origin, hop, hasTrace := ev.Trace()
	if !hasTrace {
		traceID, origin, hop = req.ID.String(), req.Requester, 0
		ev.SetTrace(traceID, origin, hop)
	}

	// "A BDN is expected to acknowledge the receipt of a discovery request
	// in a timely manner."
	ack := &core.Ack{RequestID: req.ID, BDN: d.cfg.Name}
	reply := event.New(event.TypeDiscoveryAck, "", core.EncodeAck(ack))
	reply.Source = d.cfg.Name
	reply.Timestamp = d.now()
	reply.SetTrace(traceID, origin, hop)
	_ = conn.Send(event.Encode(reply))
	d.tel.reqAcked.Inc()
	d.traceEvent(traceID, "bdn-ack", "requester", req.Requester, "origin", origin)

	if !authorized {
		d.tel.reqDenied.Inc()
		return
	}
	// "Multiple requests forwarded to the same BDN would be idempotent."
	if d.reqDedup.Seen(req.ID) {
		d.tel.reqDup.Inc()
		return
	}
	d.cfg.Logger.Debug("injecting discovery request",
		"requester", req.Requester, "id", traceID)
	d.inject(ev, traceID, origin)
}

// inject propagates the discovery request into the broker network according
// to the configured policy. Each transmission pays the BDN's InjectOverhead
// serially — the source of the unconnected topology's O(N) inefficiency.
// reqID keys the trace events ("" disables tracing for this injection);
// origin names the request's issuing node for the trace.
func (d *BDN) inject(ev *event.Event, reqID, origin string) {
	targets := d.injectionTargets()
	frame := event.Encode(ev)
	for _, r := range targets {
		if d.cfg.InjectOverhead > 0 {
			d.node.Clock().Sleep(d.cfg.InjectOverhead)
		}
		d.tel.injects.Inc()
		if reqID != "" {
			d.traceEvent(reqID, "bdn-inject", "broker", r.ad.Broker.LogicalAddress,
				"origin", origin)
		}
		if r.conn != nil {
			_ = r.conn.Send(frame)
			continue
		}
		// Broker without a live registration connection (topic-learned, or
		// recovered from the WAL after a restart): dial its advertised
		// stream endpoint, inject as a client, and adopt the session as the
		// registration connection so later injections reuse it. Closing
		// right after Send would drop the frame while it is still in
		// flight.
		if addr := r.ad.Broker.Endpoint("tcp"); addr != "" {
			if c, err := d.node.Dial(addr); err == nil {
				_ = c.Send(frame)
				d.adoptInjectionConn(r.ad.Broker.LogicalAddress, c)
			}
		}
	}
}

// adoptInjectionConn installs a freshly dialed injection connection as the
// broker's registration connection, with a watcher goroutine that clears it
// again when the session dies — the same lifecycle a broker-initiated
// registration gets from serveBrokerRegistration. When adoption loses the
// race (the broker re-registered, or was dropped, or the BDN is shutting
// down) the connection is closed only after a model-time linger, so the
// request frame just sent on it still reaches the broker.
func (d *BDN) adoptInjectionConn(logical string, conn transport.Conn) {
	lingerClose := func() {
		d.node.Clock().Sleep(time.Second)
		_ = conn.Close()
	}
	if !d.trackConn(conn) {
		go lingerClose()
		return
	}
	d.mu.Lock()
	r, ok := d.brokers[logical]
	if !ok || r.conn != nil {
		d.mu.Unlock()
		d.untrackConn(conn)
		go lingerClose()
		return
	}
	r.conn = conn
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		// The broker side treats this session as an idle client and never
		// sends on it; a Recv return means the session (or the broker) died.
		for {
			if _, err := conn.Recv(); err != nil {
				break
			}
		}
		d.untrackConn(conn)
		d.mu.Lock()
		if r, ok := d.brokers[logical]; ok && r.conn == conn {
			r.conn = nil
		}
		d.mu.Unlock()
		_ = conn.Close()
	}()
}

// injectTarget is a value snapshot of a registration, taken under d.mu, so
// inject can send without holding the lock and without racing registration
// teardown (which nils the conn) or advertisement refreshes.
type injectTarget struct {
	ad       *core.Advertisement
	conn     transport.Conn
	distance time.Duration
}

// injectionTargets snapshots the unexpired brokers to inject into under the
// policy — an expired registration must never receive a request, or a dead
// broker could still be shortlisted between sweeps.
func (d *BDN) injectionTargets() []injectTarget {
	now := d.node.Clock().Now()
	d.mu.Lock()
	all := make([]injectTarget, 0, len(d.brokers))
	for _, r := range d.brokers {
		if r.expired(now) {
			continue
		}
		all = append(all, injectTarget{ad: r.ad, conn: r.conn, distance: r.distance})
	}
	d.mu.Unlock()
	// Deterministic order: by logical address.
	sort.Slice(all, func(i, j int) bool {
		return all[i].ad.Broker.LogicalAddress < all[j].ad.Broker.LogicalAddress
	})
	if d.cfg.Policy == InjectAll || len(all) <= 2 {
		return all
	}
	// Closest and farthest by measured distance; unmeasured brokers sort
	// after measured ones so fresh registrations are still reachable.
	byDist := append([]injectTarget(nil), all...)
	sort.SliceStable(byDist, func(i, j int) bool {
		di, dj := byDist[i].distance, byDist[j].distance
		switch {
		case di == 0:
			return false
		case dj == 0:
			return true
		default:
			return di < dj
		}
	})
	return []injectTarget{byDist[0], byDist[len(byDist)-1]}
}

// MeasureDistances pings every registered broker's UDP endpoint and records
// the RTTs the closest/farthest injection policy relies on: "This information
// could easily be constructed by issuing ping request to brokers and
// computing the delays from the issued responses."
func (d *BDN) MeasureDistances() map[string]time.Duration {
	clock := d.node.Clock()
	type probe struct {
		logical string
		sentAt  time.Time
	}
	probes := make(map[uuid.UUID]probe)

	now := clock.Now()
	d.mu.Lock()
	targets := make(map[string]string, len(d.brokers)) // logical -> udp addr
	for logical, r := range d.brokers {
		if r.expired(now) {
			continue
		}
		if udp := r.ad.Broker.Endpoint("udp"); udp != "" {
			targets[logical] = udp
		}
	}
	d.mu.Unlock()

	for logical, udp := range targets {
		id := uuid.New()
		now := clock.Now()
		ping := &core.Ping{ID: id, SentAt: now}
		ev := event.New(event.TypePing, "", core.EncodePing(ping))
		ev.Source = d.cfg.Name
		if err := d.udp.Send(udp, event.Encode(ev)); err != nil {
			continue
		}
		probes[id] = probe{logical: logical, sentAt: now}
	}

	results := make(map[string]time.Duration, len(probes))
	deadline := clock.Now().Add(d.cfg.PingWindow)
	for len(results) < len(probes) {
		remaining := deadline.Sub(clock.Now())
		if remaining <= 0 {
			break
		}
		payload, _, err := d.udp.RecvTimeout(remaining)
		if err != nil {
			break
		}
		ev, err := event.Decode(payload)
		if err != nil || ev.Type != event.TypePong {
			continue
		}
		pong, err := core.DecodePong(ev.Payload)
		if err != nil {
			continue
		}
		p, ok := probes[pong.ID]
		if !ok {
			continue
		}
		if _, dup := results[p.logical]; dup {
			continue
		}
		results[p.logical] = clock.Now().Sub(p.sentAt)
	}

	d.mu.Lock()
	for logical, rtt := range results {
		if r, ok := d.brokers[logical]; ok {
			r.distance = rtt
		}
	}
	d.mu.Unlock()
	return results
}

// SubscribeViaBroker attaches the BDN to the broker network as a client of
// the given broker and subscribes to the public advertisement topic, so
// advertisements published anywhere in the network reach this BDN
// (paper §2.3's second dissemination form).
func (d *BDN) SubscribeViaBroker(brokerAddr string) error {
	conn, err := d.node.Dial(brokerAddr)
	if err != nil {
		return err
	}
	sub := event.New(event.TypeSubscribe, topics.AdvertisementTopic, nil)
	sub.Source = d.cfg.Name
	if err := conn.Send(event.Encode(sub)); err != nil {
		_ = conn.Close()
		return err
	}
	if !d.trackConn(conn) {
		_ = conn.Close()
		return errors.New("bdn: closed")
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.untrackConn(conn)
		defer conn.Close() //nolint:errcheck
		for {
			frame, err := conn.Recv()
			if err != nil {
				return
			}
			ev, err := event.Decode(frame)
			if err != nil {
				d.tel.framesMalformed.Inc()
				continue
			}
			if ev.Type == event.TypePublish && ev.Topic == topics.AdvertisementTopic {
				d.storeAdvertisement(ev, nil)
			}
		}
	}()
	return nil
}
