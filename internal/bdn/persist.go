package bdn

// Durable advertisement registry: every mutation of the broker table —
// registration, refresh, sweep, credential or epoch change — is appended to
// a write-ahead log, and periodic snapshots capture the full table so a
// restarted BDN recovers its registry instead of forcing a fleet-wide
// re-registration storm.
//
// TTL deadlines are never persisted as absolute wall times. Records and
// snapshots carry the *remaining* validity at write time, measured against
// the local node clock (the monotonic base recorded in the snapshot
// header), and recovery rebases each deadline to now+remaining — so clock
// steps or downtime between crash and restart can't mass-expire live ads.

import (
	"errors"
	"fmt"
	"time"

	"narada/internal/core"
	"narada/internal/obs"
	"narada/internal/wal"
	"narada/internal/wire"
)

// WAL record payloads: [recVersion][type][body...], encoded with the wire
// package. The advertisement body is the already-encoded core.Advertisement
// frame payload, stored verbatim.
const (
	recVersion byte = 1

	recUpsert     byte = 1 // BytesField(ad) Bool(hasDeadline) Duration(remaining)
	recDelete     byte = 2 // String(logical) String(reason)
	recCredential byte = 3 // Bool(set) BytesField(credential)
	recEpoch      byte = 4 // Uvarint(epoch)
	recApplied    byte = 5 // String(source) Uvarint(index)
)

// record is a decoded WAL record.
type record struct {
	typ byte

	adPayload   []byte // recUpsert: encoded core.Advertisement
	hasDeadline bool
	remaining   time.Duration

	logical string // recDelete
	reason  string

	credSet bool // recCredential
	cred    []byte

	epoch uint64 // recEpoch

	source string // recApplied
	index  uint64
}

func encodeUpsert(adPayload []byte, hasDeadline bool, remaining time.Duration) []byte {
	w := newRecWriter(recUpsert, 16+len(adPayload))
	w.BytesField(adPayload)
	w.Bool(hasDeadline)
	w.Duration(remaining)
	return w.Detach()
}

func encodeDelete(logical, reason string) []byte {
	w := newRecWriter(recDelete, 8+len(logical)+len(reason))
	w.String(logical)
	w.String(reason)
	return w.Detach()
}

func encodeCredential(cred []byte) []byte {
	w := newRecWriter(recCredential, 4+len(cred))
	w.Bool(len(cred) > 0)
	w.BytesField(cred)
	return w.Detach()
}

func encodeEpoch(epoch uint64) []byte {
	w := newRecWriter(recEpoch, 12)
	w.Uvarint(epoch)
	return w.Detach()
}

func encodeApplied(source string, index uint64) []byte {
	w := newRecWriter(recApplied, 12+len(source))
	w.String(source)
	w.Uvarint(index)
	return w.Detach()
}

func newRecWriter(typ byte, capacity int) *wire.Writer {
	w := wire.NewWriter(capacity + 2)
	w.Byte(recVersion)
	w.Byte(typ)
	return w
}

func decodeRecord(b []byte) (*record, error) {
	r := wire.NewReader(b)
	if len(b) < 2 {
		return nil, errors.New("bdn: short wal record")
	}
	if v := r.Byte(); v != recVersion {
		return nil, fmt.Errorf("bdn: wal record version %d", v)
	}
	rec := &record{typ: r.Byte()}
	switch rec.typ {
	case recUpsert:
		rec.adPayload = r.BytesField()
		rec.hasDeadline = r.Bool()
		rec.remaining = r.Duration()
	case recDelete:
		rec.logical = r.String()
		rec.reason = r.String()
	case recCredential:
		rec.credSet = r.Bool()
		rec.cred = r.BytesField()
	case recEpoch:
		rec.epoch = r.Uvarint()
	case recApplied:
		rec.source = r.String()
		rec.index = r.Uvarint()
	default:
		return nil, fmt.Errorf("bdn: unknown wal record type %d", rec.typ)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return rec, nil
}

// persistState is the decoded snapshot body.
//
// Snapshot schema (wire-encoded, wrapped in wal's CRC envelope):
//
//	Byte(stateVersion)
//	Varint(monotonic base, ns)  — local-clock reading the remainders were
//	                              computed against; journal/debug only
//	Time(wall)                  — NTP wall time at capture; journal/debug only
//	Uvarint(epoch)
//	Bool(credSet) BytesField(credential)
//	Uvarint(#applied) { String(source) Uvarint(index) }
//	Uvarint(#ads) { BytesField(ad) Bool(hasDeadline) Duration(remaining)
//	                Duration(distance) }
const stateVersion byte = 1

type stateAd struct {
	payload     []byte
	hasDeadline bool
	remaining   time.Duration
	distance    time.Duration
}

type persistState struct {
	monoBase time.Time
	wall     time.Time
	epoch    uint64
	credSet  bool
	cred     []byte
	applied  map[string]uint64
	ads      []stateAd
}

func encodeState(s *persistState) []byte {
	w := wire.NewWriter(256)
	w.Byte(stateVersion)
	w.Varint(s.monoBase.UnixNano())
	w.Time(s.wall)
	w.Uvarint(s.epoch)
	w.Bool(s.credSet)
	w.BytesField(s.cred)
	w.Uvarint(uint64(len(s.applied)))
	for src, idx := range s.applied {
		w.String(src)
		w.Uvarint(idx)
	}
	w.Uvarint(uint64(len(s.ads)))
	for _, ad := range s.ads {
		w.BytesField(ad.payload)
		w.Bool(ad.hasDeadline)
		w.Duration(ad.remaining)
		w.Duration(ad.distance)
	}
	return w.Detach()
}

func decodeState(b []byte) (*persistState, error) {
	r := wire.NewReader(b)
	if len(b) < 1 {
		return nil, errors.New("bdn: empty snapshot state")
	}
	if v := r.Byte(); v != stateVersion {
		return nil, fmt.Errorf("bdn: snapshot state version %d", v)
	}
	s := &persistState{}
	s.monoBase = time.Unix(0, r.Varint())
	s.wall = r.Time()
	s.epoch = r.Uvarint()
	s.credSet = r.Bool()
	s.cred = r.BytesField()
	nApplied := r.Uvarint()
	if nApplied > 1<<16 {
		return nil, errors.New("bdn: snapshot applied table too large")
	}
	s.applied = make(map[string]uint64, nApplied)
	for i := uint64(0); i < nApplied; i++ {
		src := r.String()
		s.applied[src] = r.Uvarint()
	}
	nAds := r.Uvarint()
	if nAds > 1<<24 {
		return nil, errors.New("bdn: snapshot ad table too large")
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.ads = make([]stateAd, 0, nAds)
	for i := uint64(0); i < nAds; i++ {
		ad := stateAd{
			payload:     r.BytesField(),
			hasDeadline: r.Bool(),
			remaining:   r.Duration(),
			distance:    r.Duration(),
		}
		if r.Err() != nil {
			break
		}
		s.ads = append(s.ads, ad)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// persistence holds the open WAL and compaction bookkeeping. All fields are
// guarded by the owning BDN's mutex except the log, which is internally
// synchronized.
type persistence struct {
	log       *wal.Log
	dir       string
	every     uint64 // records between snapshots
	sinceSnap uint64
	snapCh    chan struct{} // signals the snapshot loop; buffered(1)
}

// initPersistence opens the WAL in cfg.DataDir and rebuilds the table from
// the latest snapshot plus the log suffix. Called from Start, before the
// listeners come up, so no mutation can race recovery.
func (d *BDN) initPersistence() error {
	if d.cfg.DataDir == "" {
		return nil
	}
	every := uint64(d.cfg.SnapshotEvery)
	if every == 0 {
		every = 1024
	}
	log, recovered, truncated, err := wal.Open(wal.Options{
		Dir:  d.cfg.DataDir,
		Sync: d.cfg.Fsync,
	})
	if err != nil {
		return fmt.Errorf("bdn %s: wal: %w", d.cfg.Name, err)
	}
	d.persist = &persistence{
		log:    log,
		dir:    d.cfg.DataDir,
		every:  every,
		snapCh: make(chan struct{}, 1),
	}

	now := d.node.Clock().Now()
	snapIdx := uint64(0)
	if idx, state, err := wal.LoadSnapshot(d.cfg.DataDir); err == nil {
		st, derr := decodeState(state)
		if derr != nil {
			d.cfg.Logger.Warn("snapshot undecodable, replaying full wal", "err", derr)
		} else {
			d.mu.Lock()
			d.installStateLocked(st, now)
			d.mu.Unlock()
			snapIdx = idx
		}
	} else if err != wal.ErrNoSnapshot {
		log.Close()
		return fmt.Errorf("bdn %s: snapshot: %w", d.cfg.Name, err)
	}

	replayed := 0
	err = log.Replay(snapIdx+1, func(_ uint64, payload []byte) error {
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// A record we wrote but can no longer parse is a bug, not a disk
			// fault (the CRC already passed); skip it rather than refuse to
			// start.
			d.cfg.Logger.Warn("skipping undecodable wal record", "err", derr)
			return nil
		}
		d.mu.Lock()
		d.applyRecordLocked(rec, now, false)
		d.mu.Unlock()
		replayed++
		return nil
	})
	if err == wal.ErrNotFound {
		err = nil // snapshot covers more than the log retains
	}
	if err != nil {
		log.Close()
		return fmt.Errorf("bdn %s: wal replay: %w", d.cfg.Name, err)
	}
	d.mu.Lock()
	n := len(d.brokers)
	d.mu.Unlock()
	d.tel.walReplayed.Add(uint64(replayed))
	d.cfg.Logger.Info("registry recovered",
		"snapshot", snapIdx, "wal_records", recovered, "replayed", replayed,
		"brokers", n, "truncated", truncated)
	d.cfg.Journal.Emit(obs.EventWALReplay, d.cfg.Name,
		fmt.Sprintf("snapshot=%d replayed=%d brokers=%d truncated=%v",
			snapIdx, replayed, n, truncated))
	return nil
}

// installStateLocked replaces the table (and epoch/credential/applied maps)
// with a decoded snapshot, rebasing every deadline to now+remaining. Live
// registration connections for brokers present in both tables survive.
func (d *BDN) installStateLocked(st *persistState, now time.Time) {
	old := d.brokers
	d.brokers = make(map[string]*registration, len(st.ads))
	for _, sa := range st.ads {
		ad, err := core.DecodeAdvertisement(sa.payload)
		if err != nil {
			continue
		}
		r := &registration{ad: ad, distance: sa.distance}
		if sa.hasDeadline {
			r.expiresAt = now.Add(sa.remaining)
		}
		if prev, ok := old[ad.Broker.LogicalAddress]; ok {
			r.conn = prev.conn
		}
		d.brokers[ad.Broker.LogicalAddress] = r
	}
	if st.credSet {
		d.credential = st.cred
	}
	if st.epoch > d.epoch {
		d.epoch = st.epoch
	}
	for src, idx := range st.applied {
		if idx > d.applied[src] {
			d.applied[src] = idx
		}
	}
}

// applyRecordLocked applies one decoded record to the in-memory table.
// During recovery (replicate=false) nothing is re-appended; when a standby
// applies a replicated record (replicate=true) the caller is responsible
// for appending it to the local WAL.
func (d *BDN) applyRecordLocked(rec *record, now time.Time, journal bool) {
	switch rec.typ {
	case recUpsert:
		ad, err := core.DecodeAdvertisement(rec.adPayload)
		if err != nil {
			return
		}
		r, ok := d.brokers[ad.Broker.LogicalAddress]
		if !ok {
			r = &registration{}
			d.brokers[ad.Broker.LogicalAddress] = r
			if journal {
				d.cfg.Journal.Emit(obs.EventAdRegistered, ad.Broker.LogicalAddress,
					fmt.Sprintf("realm=%s replicated", ad.Broker.Realm))
			}
		}
		r.ad = ad
		if rec.hasDeadline {
			r.expiresAt = now.Add(rec.remaining)
		} else {
			r.expiresAt = time.Time{}
		}
	case recDelete:
		if _, ok := d.brokers[rec.logical]; ok {
			delete(d.brokers, rec.logical)
			if journal {
				d.cfg.Journal.Emit(obs.EventAdExpired, rec.logical, rec.reason)
			}
		}
	case recCredential:
		if rec.credSet {
			d.credential = rec.cred
		} else {
			d.credential = nil
		}
	case recEpoch:
		if rec.epoch > d.epoch {
			d.epoch = rec.epoch
		}
	case recApplied:
		if rec.index > d.applied[rec.source] {
			d.applied[rec.source] = rec.index
		}
	}
}

// appendRecordLocked appends one record to the WAL (no-op when the BDN is
// not durable) and schedules a snapshot when enough records accumulated.
// Must be called with d.mu held so WAL order matches table order.
func (d *BDN) appendRecordLocked(payload []byte) {
	p := d.persist
	if p == nil {
		return
	}
	if _, err := p.log.Append(payload); err != nil {
		d.tel.walErrors.Inc()
		d.cfg.Logger.Error("wal append failed", "err", err)
		return
	}
	d.tel.walAppends.Inc()
	p.sinceSnap++
	if p.sinceSnap >= p.every {
		p.sinceSnap = 0
		select {
		case p.snapCh <- struct{}{}:
		default:
		}
	}
}

// buildStateLocked captures the full table as a snapshot body. Must be
// called with d.mu held; returns the WAL index the state covers.
func (d *BDN) buildStateLocked() (state []byte, index uint64) {
	now := d.node.Clock().Now()
	st := &persistState{
		monoBase: now,
		wall:     d.now(),
		epoch:    d.epoch,
		credSet:  len(d.credential) > 0,
		cred:     d.credential,
		applied:  make(map[string]uint64, len(d.applied)),
		ads:      make([]stateAd, 0, len(d.brokers)),
	}
	for src, idx := range d.applied {
		st.applied[src] = idx
	}
	for _, r := range d.brokers {
		if r.expired(now) {
			continue
		}
		sa := stateAd{
			payload:  core.EncodeAdvertisement(r.ad),
			distance: r.distance,
		}
		if !r.expiresAt.IsZero() {
			sa.hasDeadline = true
			sa.remaining = r.expiresAt.Sub(now)
		}
		st.ads = append(st.ads, sa)
	}
	index = uint64(0)
	if d.persist != nil {
		index = d.persist.log.LastIndex()
	}
	return encodeState(st), index
}

// snapshotLoop persists a snapshot each time enough WAL records accumulate,
// then prunes the covered segments.
func (d *BDN) snapshotLoop() {
	defer d.wg.Done()
	d.mu.Lock()
	p := d.persist
	d.mu.Unlock()
	for {
		select {
		case <-d.closed:
			return
		case <-p.snapCh:
		}
		if err := d.SnapshotNow(); err != nil {
			d.cfg.Logger.Error("snapshot failed", "err", err)
		}
	}
}

// SnapshotNow captures the table, persists it as the latest snapshot, and
// prunes WAL segments it covers. No-op for non-durable BDNs.
func (d *BDN) SnapshotNow() error {
	d.mu.Lock()
	p := d.persist
	if p == nil {
		d.mu.Unlock()
		return nil
	}
	state, index := d.buildStateLocked()
	d.mu.Unlock()
	if index == 0 {
		return nil
	}
	if err := wal.SaveSnapshot(p.dir, index, state); err != nil {
		d.tel.walErrors.Inc()
		return err
	}
	if err := p.log.TruncateFront(index + 1); err != nil {
		return err
	}
	d.tel.walSnapshots.Inc()
	d.cfg.Journal.Emit(obs.EventWALSnapshot, d.cfg.Name,
		fmt.Sprintf("index=%d bytes=%d", index, len(state)))
	return nil
}

// Durable reports whether the BDN persists its registry.
func (d *BDN) Durable() bool { return d.cfg.DataDir != "" }

func (d *BDN) persistence() *persistence {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.persist
}

// WALRange returns the retained WAL index range (0,0 when empty or not
// durable). Used by the replication layer.
func (d *BDN) WALRange() (first, last uint64) {
	p := d.persistence()
	if p == nil {
		return 0, 0
	}
	return p.log.FirstIndex(), p.log.LastIndex()
}

// WALNotify returns a channel closed at the next WAL append, or nil when
// not durable. Used by the replication layer to tail the log.
func (d *BDN) WALNotify() <-chan struct{} {
	p := d.persistence()
	if p == nil {
		return nil
	}
	return p.log.Notify()
}

// ReadRecords returns up to max WAL record payloads starting at index from.
// It returns wal.ErrNotFound when from has been compacted away (the caller
// should fall back to ReplicaSnapshot).
func (d *BDN) ReadRecords(from uint64, max int) ([][]byte, error) {
	p := d.persistence()
	if p == nil {
		return nil, errors.New("bdn: not durable")
	}
	var out [][]byte
	err := p.log.Replay(from, func(_ uint64, payload []byte) error {
		out = append(out, append([]byte(nil), payload...))
		if len(out) >= max {
			return errEnough
		}
		return nil
	})
	if err == errEnough {
		err = nil
	}
	return out, err
}

var errEnough = errors.New("bdn: enough records")

// Epoch returns the highest election epoch this node has persisted.
func (d *BDN) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// SetEpoch durably records a new election epoch (monotonic; lower values
// are ignored).
func (d *BDN) SetEpoch(epoch uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if epoch <= d.epoch {
		return
	}
	d.epoch = epoch
	d.appendRecordLocked(encodeEpoch(epoch))
}

// Credential returns the credential private discovery requests must carry.
func (d *BDN) Credential() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.credential
}

// SetRequiredCredential durably replaces the private-BDN credential.
func (d *BDN) SetRequiredCredential(cred []byte) {
	var hook func([]byte)
	rec := encodeCredential(cred)
	d.mu.Lock()
	d.credential = append([]byte(nil), cred...)
	d.appendRecordLocked(rec)
	hook = d.mutHook
	d.mu.Unlock()
	if hook != nil {
		hook(rec)
	}
}

// AppliedIndex returns how far into source's WAL this node has applied.
func (d *BDN) AppliedIndex(source string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applied[source]
}

// ApplyReplicated applies one record streamed from source's WAL (at the
// given index in source's index space), records it in the local WAL, and
// advances the applied watermark. Replicated records never re-trigger the
// mutation hook, so forwarding cannot loop.
func (d *BDN) ApplyReplicated(source string, index uint64, payload []byte) error {
	rec, err := decodeRecord(payload)
	if err != nil {
		return err
	}
	now := d.node.Clock().Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if index > 0 && index <= d.applied[source] {
		return nil // duplicate delivery
	}
	d.applyRecordLocked(rec, now, true)
	d.appendRecordLocked(payload)
	if index > 0 {
		d.applied[source] = index
		d.appendRecordLocked(encodeApplied(source, index))
	}
	d.tel.walApplied.Inc()
	return nil
}

// ReplicaSnapshot captures the full table for transfer to a far-behind
// standby, returning the WAL index the state covers.
func (d *BDN) ReplicaSnapshot() (index uint64, state []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	state, index = d.buildStateLocked()
	return index, state
}

// InstallReplicaState replaces the table with a snapshot streamed from
// source (covering source's WAL through index), then persists a local
// snapshot immediately so the installed state survives a crash.
func (d *BDN) InstallReplicaState(source string, index uint64, state []byte) error {
	st, err := decodeState(state)
	if err != nil {
		return err
	}
	now := d.node.Clock().Now()
	d.mu.Lock()
	d.installStateLocked(st, now)
	if index > d.applied[source] {
		d.applied[source] = index
		d.appendRecordLocked(encodeApplied(source, index))
	}
	d.mu.Unlock()
	return d.SnapshotNow()
}

// SetMutationHook registers a function invoked (outside the table lock)
// with the encoded WAL record of every locally-originated mutation — the
// replication layer uses it to forward direct registrations to the primary.
// Replicated and recovered records never fire the hook.
func (d *BDN) SetMutationHook(fn func(rec []byte)) {
	d.mu.Lock()
	d.mutHook = fn
	d.mu.Unlock()
}

// closePersistence writes a final snapshot and closes the WAL.
func (d *BDN) closePersistence() {
	p := d.persistence()
	if p == nil {
		return
	}
	if err := d.SnapshotNow(); err != nil {
		d.cfg.Logger.Warn("final snapshot failed", "err", err)
	}
	_ = p.log.Close()
}
