package bdn

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/event"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/transport"
	"narada/internal/uuid"
)

const mib = 1024 * 1024

type env struct {
	net *simnet.Network
	t   *testing.T
	rng *rand.Rand
}

func newEnv(t *testing.T, seed int64) *env {
	return &env{
		net: simnet.NewPaperWAN(simnet.Config{Scale: 300, Seed: seed}),
		t:   t,
		rng: rand.New(rand.NewSource(seed)),
	}
}

func (e *env) node(site, host string) (*transport.SimNode, *ntptime.Service) {
	skew := e.net.RandomSkew(20 * time.Millisecond)
	node := transport.NewSimNode(e.net, site, host, skew)
	ntp := ntptime.NewService(node.Clock(), skew, e.rng)
	ntp.InitImmediately()
	return node, ntp
}

func (e *env) bdn(cfg Config) *BDN {
	e.t.Helper()
	node, ntp := e.node(simnet.SiteBloomington, "bdn-"+cfg.Name)
	if cfg.InjectOverhead == 0 {
		cfg.InjectOverhead = time.Millisecond
	}
	d, err := New(node, ntp, cfg)
	if err != nil {
		e.t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(d.Close)
	return d
}

func (e *env) broker(site, name string) *broker.Broker {
	e.t.Helper()
	node, ntp := e.node(site, name)
	b, err := broker.New(node, ntp, broker.Config{
		LogicalAddress: name,
		Realm:          site,
		Sampler: metrics.NewStaticSampler(metrics.Usage{
			TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib,
		}),
	})
	if err != nil {
		e.t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(b.Close)
	return b
}

func TestNewRequiresName(t *testing.T) {
	e := newEnv(t, 1)
	node, ntp := e.node(simnet.SiteBloomington, "x")
	if _, err := New(node, ntp, Config{}); err == nil {
		t.Fatal("missing name accepted")
	}
}

func TestBrokerRegistrationStored(t *testing.T) {
	e := newEnv(t, 2)
	d := e.bdn(Config{Name: "gsl.org"})
	b := e.broker(simnet.SiteFSU, "broker-fsu")
	if err := b.RegisterWithBDN(d.Addr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	if d.BrokerCount() != 1 {
		t.Fatalf("BrokerCount = %d", d.BrokerCount())
	}
	infos := d.Brokers()
	if infos[0].LogicalAddress != "broker-fsu" {
		t.Fatalf("stored %+v", infos[0])
	}
}

func TestAdmitFilterRejects(t *testing.T) {
	// "a BDN in the US may be interested only in broker additions in North
	// America."
	e := newEnv(t, 3)
	d := e.bdn(Config{
		Name: "us-only",
		AdmitFilter: func(ad *core.Advertisement) bool {
			return !strings.Contains(ad.Broker.Realm, "cardiff")
		},
	})
	us := e.broker(simnet.SiteFSU, "broker-fsu")
	uk := e.broker(simnet.SiteCardiff, "broker-cardiff")
	_ = us.RegisterWithBDN(d.Addr())
	_ = uk.RegisterWithBDN(d.Addr())
	e.net.Clock().Sleep(500 * time.Millisecond)
	if d.BrokerCount() != 1 {
		t.Fatalf("BrokerCount = %d, want 1 (UK filtered)", d.BrokerCount())
	}
	if d.Brokers()[0].LogicalAddress != "broker-fsu" {
		t.Fatal("wrong broker admitted")
	}
}

// requestViaBDN opens a stream to the BDN, sends a discovery request and
// returns the ack (nil on timeout).
func requestViaBDN(t *testing.T, e *env, d *BDN, req *core.DiscoveryRequest) *core.Ack {
	t.Helper()
	node, _ := e.node(simnet.SiteBloomington, "req-"+req.ID.String()[:8])
	conn, err := node.Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ev := event.New(event.TypeDiscoveryRequest, "", core.EncodeDiscoveryRequest(req))
	if err := conn.Send(event.Encode(ev)); err != nil {
		t.Fatal(err)
	}
	frame, err := conn.RecvTimeout(2 * time.Second)
	if err != nil {
		return nil
	}
	reply, err := event.Decode(frame)
	if err != nil || reply.Type != event.TypeDiscoveryAck {
		return nil
	}
	ack, err := core.DecodeAck(reply.Payload)
	if err != nil {
		return nil
	}
	return ack
}

func TestAckTimely(t *testing.T) {
	e := newEnv(t, 4)
	d := e.bdn(Config{Name: "gsl.org"})
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "client",
		ResponseAddr: "bloomington/client:9"}
	ack := requestViaBDN(t, e, d, req)
	if ack == nil {
		t.Fatal("no ack")
	}
	if ack.RequestID != req.ID || ack.BDN != "gsl.org" {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestInjectionReachesBroker(t *testing.T) {
	e := newEnv(t, 5)
	d := e.bdn(Config{Name: "gsl.org"})
	b := e.broker(simnet.SiteIndianapolis, "broker-indy")
	if err := b.RegisterWithBDN(d.Addr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)

	node, _ := e.node(simnet.SiteBloomington, "client")
	pc, _ := node.ListenPacket(0)
	defer pc.Close()
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "client",
		ResponseAddr: pc.LocalAddr()}
	if ack := requestViaBDN(t, e, d, req); ack == nil {
		t.Fatal("no ack")
	}
	payload, _, err := pc.RecvTimeout(3 * time.Second)
	if err != nil {
		t.Fatal("no discovery response after injection")
	}
	ev, err := event.Decode(payload)
	if err != nil || ev.Type != event.TypeDiscoveryResponse {
		t.Fatalf("unexpected reply: %v %v", ev, err)
	}
}

func TestIdempotentRequests(t *testing.T) {
	e := newEnv(t, 6)
	d := e.bdn(Config{Name: "gsl.org"})
	b := e.broker(simnet.SiteIndianapolis, "broker-indy")
	_ = b.RegisterWithBDN(d.Addr())
	e.net.Clock().Sleep(300 * time.Millisecond)

	node, _ := e.node(simnet.SiteBloomington, "client")
	pc, _ := node.ListenPacket(0)
	defer pc.Close()
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "client",
		ResponseAddr: pc.LocalAddr()}
	// Send the same request twice: both must be acked (the broker dedups
	// the second injection if it happens; the BDN must not re-inject).
	if ack := requestViaBDN(t, e, d, req); ack == nil {
		t.Fatal("first request not acked")
	}
	if ack := requestViaBDN(t, e, d, req); ack == nil {
		t.Fatal("retransmitted request not acked (idempotency broken)")
	}
	// Exactly one response arrives.
	if _, _, err := pc.RecvTimeout(3 * time.Second); err != nil {
		t.Fatal("no response")
	}
	if _, _, err := pc.RecvTimeout(500 * time.Millisecond); err == nil {
		t.Fatal("duplicate response after idempotent retransmission")
	}
}

func TestPrivateBDNRequiresCredential(t *testing.T) {
	e := newEnv(t, 7)
	d := e.bdn(Config{Name: "private.corp", Private: true,
		RequiredCredential: []byte("badge")})
	b := e.broker(simnet.SiteIndianapolis, "broker-indy")
	_ = b.RegisterWithBDN(d.Addr())
	e.net.Clock().Sleep(300 * time.Millisecond)

	node, _ := e.node(simnet.SiteBloomington, "client")
	pc, _ := node.ListenPacket(0)
	defer pc.Close()

	// Without credentials: acked (timely ack is unconditional) but never
	// disseminated.
	noCred := &core.DiscoveryRequest{ID: uuid.New(), Requester: "c",
		ResponseAddr: pc.LocalAddr()}
	if ack := requestViaBDN(t, e, d, noCred); ack == nil {
		t.Fatal("unauthorized request not acked")
	}
	if _, _, err := pc.RecvTimeout(500 * time.Millisecond); err == nil {
		t.Fatal("unauthorized request was disseminated")
	}

	withCred := &core.DiscoveryRequest{ID: uuid.New(), Requester: "c",
		ResponseAddr: pc.LocalAddr(), Credentials: []byte("badge")}
	if ack := requestViaBDN(t, e, d, withCred); ack == nil {
		t.Fatal("authorized request not acked")
	}
	if _, _, err := pc.RecvTimeout(3 * time.Second); err != nil {
		t.Fatal("authorized request not disseminated")
	}
}

func TestMeasureDistances(t *testing.T) {
	e := newEnv(t, 8)
	d := e.bdn(Config{Name: "gsl.org"})
	near := e.broker(simnet.SiteIndianapolis, "broker-near")
	far := e.broker(simnet.SiteCardiff, "broker-far")
	_ = near.RegisterWithBDN(d.Addr())
	_ = far.RegisterWithBDN(d.Addr())
	e.net.Clock().Sleep(300 * time.Millisecond)

	dists := d.MeasureDistances()
	if len(dists) != 2 {
		t.Fatalf("measured %d distances, want 2: %v", len(dists), dists)
	}
	if dists["broker-near"] >= dists["broker-far"] {
		t.Fatalf("distance ordering wrong: near=%v far=%v",
			dists["broker-near"], dists["broker-far"])
	}
}

func TestClosestFarthestInjection(t *testing.T) {
	// With 3 registered brokers and the smart policy, only the closest and
	// farthest get the injection; the middle broker (unconnected) never
	// hears the request.
	e := newEnv(t, 9)
	d := e.bdn(Config{Name: "gsl.org", Policy: InjectClosestFarthest})
	near := e.broker(simnet.SiteIndianapolis, "a-near") // ~3ms
	mid := e.broker(simnet.SiteUMN, "b-mid")            // ~22ms
	far := e.broker(simnet.SiteCardiff, "c-far")        // ~120ms
	for _, b := range []*broker.Broker{near, mid, far} {
		if err := b.RegisterWithBDN(d.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	d.MeasureDistances()

	node, _ := e.node(simnet.SiteBloomington, "client")
	pc, _ := node.ListenPacket(0)
	defer pc.Close()
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "client",
		ResponseAddr: pc.LocalAddr()}
	if ack := requestViaBDN(t, e, d, req); ack == nil {
		t.Fatal("no ack")
	}
	seen := map[string]bool{}
	deadline := e.net.Clock().Now().Add(2 * time.Second)
	for {
		remaining := deadline.Sub(e.net.Clock().Now())
		if remaining <= 0 {
			break
		}
		payload, _, err := pc.RecvTimeout(remaining)
		if err != nil {
			break
		}
		ev, err := event.Decode(payload)
		if err != nil || ev.Type != event.TypeDiscoveryResponse {
			continue
		}
		resp, err := core.DecodeDiscoveryResponse(ev.Payload)
		if err == nil {
			seen[resp.Broker.LogicalAddress] = true
		}
	}
	if !seen["a-near"] || !seen["c-far"] {
		t.Fatalf("closest/farthest not both injected: %v", seen)
	}
	if seen["b-mid"] {
		t.Fatalf("middle broker reached despite unconnected topology: %v", seen)
	}
}

func TestSubscribeViaBrokerLearnsAdvertisements(t *testing.T) {
	// Second dissemination form: a broker publishes its advertisement on the
	// public topic; a BDN subscribed via another broker learns it.
	e := newEnv(t, 10)
	d := e.bdn(Config{Name: "gsl.org"})
	b1 := e.broker(simnet.SiteIndianapolis, "hub")
	b2 := e.broker(simnet.SiteUMN, "spoke")
	if err := b2.LinkTo(b1.StreamAddr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(200 * time.Millisecond)
	if err := d.SubscribeViaBroker(b1.StreamAddr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(200 * time.Millisecond)
	if err := b2.PublishAdvertisement(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.BrokerCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.BrokerCount() != 1 {
		t.Fatalf("BrokerCount = %d, want 1 via topic", d.BrokerCount())
	}
	if d.Brokers()[0].LogicalAddress != "spoke" {
		t.Fatalf("learned %+v", d.Brokers()[0])
	}
}
