package replica

// Replication protocol messages, one per transport frame, carried over the
// repo's wire framing on a dedicated replication listener (separate from
// the BDN's discovery/registration endpoint):
//
//	[magic 0xBE][version 1][type][body...]
//
// hello     — session handshake, both directions: name + advertised addr.
//	beat      — primary → all: epoch, lease duration, WAL last index.
//	fetch     — standby → primary: stream my leader's WAL from this index.
//	records   — primary → standby: a batch of WAL records starting at from.
//	snapshot  — primary → standby: full-state transfer when the requested
//	            index was compacted away.
//	ack       — standby → primary: applied through this index.
//	forward   — standby → primary: a locally-originated mutation record, so
//	            registrations accepted by any member reach the whole cluster.
//	fence     — anyone → stale primary: your epoch is behind mine.

import (
	"errors"
	"fmt"
	"time"

	"narada/internal/wire"
)

const (
	wireMagic   byte = 0xBE
	wireVersion byte = 1

	msgHello    byte = 1
	msgBeat     byte = 2
	msgFetch    byte = 3
	msgRecords  byte = 4
	msgSnapshot byte = 5
	msgAck      byte = 6
	msgForward  byte = 7
	msgFence    byte = 8
)

// maxBatchRecords bounds one records message.
const maxBatchRecords = 256

type message struct {
	typ byte

	name string // hello, beat: sender identity
	addr string // hello, beat: sender's advertised replication addr

	epoch     uint64        // beat, records, snapshot, fence
	lease     time.Duration // beat
	lastIndex uint64        // beat: primary's WAL last index

	from uint64   // fetch: first wanted; records: index of recs[0]
	recs [][]byte // records

	index uint64 // snapshot: covered WAL index; ack: applied through
	state []byte // snapshot body

	rec []byte // forward: one WAL record
}

func newMsgWriter(typ byte, capacity int) *wire.Writer {
	w := wire.NewWriter(capacity + 3)
	w.Byte(wireMagic)
	w.Byte(wireVersion)
	w.Byte(typ)
	return w
}

func encodeHello(name, addr string) []byte {
	w := newMsgWriter(msgHello, 8+len(name)+len(addr))
	w.String(name)
	w.String(addr)
	return w.Detach()
}

func encodeBeat(name, addr string, epoch uint64, lease time.Duration, lastIndex uint64) []byte {
	w := newMsgWriter(msgBeat, 32+len(name)+len(addr))
	w.String(name)
	w.String(addr)
	w.Uvarint(epoch)
	w.Duration(lease)
	w.Uvarint(lastIndex)
	return w.Detach()
}

func encodeFetch(from uint64) []byte {
	w := newMsgWriter(msgFetch, 12)
	w.Uvarint(from)
	return w.Detach()
}

func encodeRecords(epoch, from uint64, recs [][]byte) []byte {
	size := 32
	for _, r := range recs {
		size += 8 + len(r)
	}
	w := newMsgWriter(msgRecords, size)
	w.Uvarint(epoch)
	w.Uvarint(from)
	w.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		w.BytesField(r)
	}
	return w.Detach()
}

func encodeSnapshot(epoch, index uint64, state []byte) []byte {
	w := newMsgWriter(msgSnapshot, 24+len(state))
	w.Uvarint(epoch)
	w.Uvarint(index)
	w.BytesField(state)
	return w.Detach()
}

func encodeAck(index uint64) []byte {
	w := newMsgWriter(msgAck, 12)
	w.Uvarint(index)
	return w.Detach()
}

func encodeForward(rec []byte) []byte {
	w := newMsgWriter(msgForward, 8+len(rec))
	w.BytesField(rec)
	return w.Detach()
}

func encodeFence(epoch uint64) []byte {
	w := newMsgWriter(msgFence, 12)
	w.Uvarint(epoch)
	return w.Detach()
}

func decodeMessage(b []byte) (*message, error) {
	if len(b) < 3 {
		return nil, errors.New("replica: short frame")
	}
	if b[0] != wireMagic || b[1] != wireVersion {
		return nil, fmt.Errorf("replica: bad frame header %x %x", b[0], b[1])
	}
	r := wire.NewReader(b[3:])
	m := &message{typ: b[2]}
	switch m.typ {
	case msgHello:
		m.name = r.String()
		m.addr = r.String()
	case msgBeat:
		m.name = r.String()
		m.addr = r.String()
		m.epoch = r.Uvarint()
		m.lease = r.Duration()
		m.lastIndex = r.Uvarint()
	case msgFetch:
		m.from = r.Uvarint()
	case msgRecords:
		m.epoch = r.Uvarint()
		m.from = r.Uvarint()
		n := r.Uvarint()
		if n > maxBatchRecords {
			return nil, fmt.Errorf("replica: batch of %d records", n)
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		m.recs = make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			m.recs = append(m.recs, r.BytesField())
		}
	case msgSnapshot:
		m.epoch = r.Uvarint()
		m.index = r.Uvarint()
		m.state = r.BytesField()
	case msgAck:
		m.index = r.Uvarint()
	case msgForward:
		m.rec = r.BytesField()
	case msgFence:
		m.epoch = r.Uvarint()
	default:
		return nil, fmt.Errorf("replica: unknown message type %d", m.typ)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}
