// Package replica adds primary/standby replication to durable BDNs: every
// cluster member runs a full BDN (accepting registrations and discovery
// requests), and a replication agent streams the primary's write-ahead log
// to all standbys with acked offsets, so each member holds the complete
// advertisement table at all times.
//
// Leadership is a lease: the primary beats every lease/4 on a mesh of
// supervised connections; a standby whose lease expires promotes itself
// after a deterministic per-rank stagger (rank among the sorted member
// addresses, excluding the expired leader) and bumps the election epoch.
// Epochs fence stale primaries — a primary hearing a higher epoch, or an
// equal epoch from a lower address (the dual-primary tie-break), demotes
// itself. Standbys forward locally-accepted registrations to the primary,
// so a broker registered with any member is visible cluster-wide; after a
// primary death the brokers' existing supervised registration links to the
// surviving members keep refreshing the promoted standby's table directly —
// zero re-registration round-trips.
package replica

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"narada/internal/bdn"
	"narada/internal/obs"
	"narada/internal/supervise"
	"narada/internal/transport"
	"narada/internal/wal"
)

// DefaultLease is the leader lease duration when Config.Lease is zero.
const DefaultLease = 2 * time.Second

// Config assembles a replication agent around a durable BDN.
type Config struct {
	// Name is this member's identity (normally the BDN name). Applied
	// watermarks and journal events are keyed by it.
	Name string
	// Node supplies the transport (sim or real).
	Node transport.Node
	// Store is the durable BDN this agent replicates. Must have a DataDir.
	Store *bdn.BDN
	// ListenPort binds the replication endpoint (0 = auto).
	ListenPort int
	// Addr is the replication address advertised to peers; defaults to the
	// listener address. Member ranks come from sorting these strings, so
	// every node must use the same spelling for a given peer.
	Addr string
	// Peers lists the other members' replication addresses.
	Peers []string
	// Lease is the leader lease duration (default 2s). Failover takes
	// between one and roughly two leases depending on rank.
	Lease time.Duration
	// Policy tunes the supervised redial of peer connections.
	Policy supervise.Policy
	// Logger receives replication events; nil discards them.
	Logger *slog.Logger
	// Metrics, when set, receives the replica metric families.
	Metrics *obs.Registry
	// Journal, when set, records replica_promoted/replica_demoted events.
	Journal *obs.Journal
}

// Replica is one member's replication agent.
type Replica struct {
	cfg      Config
	node     transport.Node
	d        *bdn.BDN
	listener transport.Listener
	addr     string
	lease    time.Duration

	mu         sync.Mutex
	primary    bool
	epoch      uint64
	leaderName string
	leaderAddr string
	leaseUntil time.Time
	lastBeatAt time.Time
	leaderLast uint64 // leader's WAL last index, from beats
	sessions   map[string]*session
	acked      map[string]uint64 // primary view: applied index per peer addr
	peers      []string
	started    bool
	// pending holds locally-originated mutation records not yet confirmed
	// by the primary, keyed by their encoded bytes. A forward sent while no
	// leader is known (mid-election) would otherwise be lost until the
	// broker's next periodic re-advertisement; instead entries are retried
	// on each beat and cleared when the record echoes back down the
	// leader's stream.
	pending map[string][]byte
	flushAt time.Time

	promotions *obs.Counter
	demotions  *obs.Counter
	fencesSent *obs.Counter
	streamed   *obs.Counter
	forwards   *obs.Counter

	runners   []*supervise.Runner
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// session is one live connection to a peer member, either accepted or
// dialed. fetchedEpoch tracks which epoch this session has requested the
// leader's stream under (guarded by the replica mutex).
type session struct {
	conn         transport.Conn
	peerAddr     string
	peerName     string // learned from the peer's hello ("" until then)
	fetchedEpoch uint64
	closed       chan struct{}
	closeOnce    sync.Once
}

func (s *session) close() {
	s.closeOnce.Do(func() {
		_ = s.conn.Close()
		close(s.closed)
	})
}

// New binds the replication listener and registers metrics. Call Start to
// join the cluster. The BDN must be durable — replication streams its WAL.
func New(cfg Config) (*Replica, error) {
	if cfg.Name == "" {
		return nil, errors.New("replica: Name required")
	}
	if cfg.Store == nil || !cfg.Store.Durable() {
		return nil, errors.New("replica: requires a durable BDN (set DataDir)")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	cfg.Logger = cfg.Logger.With("replica", cfg.Name)
	l, err := cfg.Node.Listen(cfg.ListenPort)
	if err != nil {
		return nil, fmt.Errorf("replica %s: listen: %w", cfg.Name, err)
	}
	r := &Replica{
		cfg:      cfg,
		node:     cfg.Node,
		d:        cfg.Store,
		listener: l,
		addr:     cfg.Addr,
		lease:    cfg.Lease,
		sessions: make(map[string]*session),
		acked:    make(map[string]uint64),
		pending:  make(map[string][]byte),
		peers:    append([]string(nil), cfg.Peers...),
		closed:   make(chan struct{}),
	}
	if r.addr == "" {
		r.addr = l.Addr()
	}
	r.epoch = r.d.Epoch() // resume from the persisted election epoch
	r.initTelemetry(cfg.Metrics)
	return r, nil
}

// Addr returns the replication address peers should dial.
func (r *Replica) Addr() string { return r.addr }

// Start joins the cluster: accept loop, supervised dials to the peers this
// member owns the edge to, and the election loop. peers, when non-nil,
// replaces Config.Peers (testbeds bind every listener first, then start).
func (r *Replica) Start(peers []string) error {
	now := r.node.Clock().Now()
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return errors.New("replica: already started")
	}
	r.started = true
	if peers != nil {
		r.peers = append([]string(nil), peers...)
	}
	// Start with a 2× grace lease: a restarted member rejoining a healthy
	// cluster hears the primary's beat well before promoting, and at
	// bootstrap the lowest-address member elects itself after the grace.
	r.leaseUntil = now.Add(2 * r.lease)
	r.lastBeatAt = now
	peerList := append([]string(nil), r.peers...)
	r.mu.Unlock()

	// Standby-accepted registrations must reach the primary.
	r.d.SetMutationHook(r.forwardMutation)

	r.wg.Add(1)
	go r.acceptLoop()

	// Each pair is connected by exactly one supervised session, dialed by
	// the lexicographically smaller address, so the mesh has no duplicate
	// edges. The runner redials with backoff when a session dies.
	for _, peer := range peerList {
		if r.addr >= peer {
			continue
		}
		peer := peer
		runner := supervise.New(supervise.RunnerConfig{
			Target:  peer,
			Policy:  r.cfg.Policy,
			Clock:   r.node.Clock(),
			Logger:  r.cfg.Logger,
			Journal: r.cfg.Journal,
			Dial:    func() (<-chan struct{}, error) { return r.dialPeer(peer) },
		})
		r.mu.Lock()
		r.runners = append(r.runners, runner)
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			runner.Run()
		}()
	}

	r.wg.Add(1)
	go r.electionLoop()
	r.cfg.Logger.Info("replica started", "addr", r.addr, "peers", len(peerList))
	return nil
}

// Close leaves the cluster and releases the listener.
func (r *Replica) Close() {
	r.closeOnce.Do(func() {
		r.d.SetMutationHook(nil)
		close(r.closed)
		_ = r.listener.Close()
		r.mu.Lock()
		runners := r.runners
		sessions := make([]*session, 0, len(r.sessions))
		for _, s := range r.sessions {
			sessions = append(sessions, s)
		}
		r.mu.Unlock()
		for _, runner := range runners {
			runner.Stop()
		}
		for _, s := range sessions {
			s.close()
		}
		r.wg.Wait()
	})
}

// IsPrimary reports whether this member currently holds leadership.
func (r *Replica) IsPrimary() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

// Epoch returns the current election epoch.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// LeaderAddr returns the replication address of the member this replica
// believes is primary ("" when no leader is known).
func (r *Replica) LeaderAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderAddr
}

func (r *Replica) initTelemetry(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	who := obs.L("node", r.cfg.Name)
	r.promotions = reg.Counter("narada_replica_promotions_total",
		"Lease-expiry promotions to primary.", who)
	r.demotions = reg.Counter("narada_replica_demotions_total",
		"Step-downs after hearing a superior leader (epoch fencing).", who)
	r.fencesSent = reg.Counter("narada_replica_fences_total",
		"Fence messages sent to stale primaries.", who)
	r.streamed = reg.Counter("narada_replica_records_streamed_total",
		"WAL records streamed to standbys.", who)
	r.forwards = reg.Counter("narada_replica_forwards_total",
		"Locally-accepted mutations forwarded to the primary.", who)
	reg.GaugeFunc("narada_replica_role",
		"1 when this member is the primary, 0 for standbys.",
		func() float64 {
			if r.IsPrimary() {
				return 1
			}
			return 0
		}, who)
	reg.GaugeFunc("narada_replica_epoch",
		"Current election epoch.",
		func() float64 { return float64(r.Epoch()) }, who)
	reg.GaugeFunc("narada_replica_lag_records",
		"Replication lag in WAL records: how far this standby trails the "+
			"primary (primaries report their worst-trailing peer).",
		func() float64 { return float64(r.lag()) }, who)
	reg.GaugeFunc("narada_replica_leader_age_seconds",
		"Seconds since this standby last heard the primary's beat (0 on "+
			"the primary itself).",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.primary || !r.started {
				return 0
			}
			return r.node.Clock().Now().Sub(r.lastBeatAt).Seconds()
		}, who)
}

// lag computes the replication-lag gauge.
func (r *Replica) lag() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.primary {
		_, last := r.d.WALRange()
		var worst uint64
		for addr := range r.sessions {
			if acked := r.acked[addr]; last > acked && last-acked > worst {
				worst = last - acked
			}
		}
		return worst
	}
	if r.leaderName == "" {
		return 0
	}
	applied := r.d.AppliedIndex(r.leaderName)
	if r.leaderLast > applied {
		return r.leaderLast - applied
	}
	return 0
}

// dialPeer establishes the supervised session this member owns.
func (r *Replica) dialPeer(peer string) (<-chan struct{}, error) {
	conn, err := r.node.Dial(peer)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(encodeHello(r.cfg.Name, r.addr)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	s := r.addSession(conn, "", peer)
	if s == nil {
		_ = conn.Close()
		return nil, errors.New("replica: closed")
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.readLoop(s)
	}()
	return s.closed, nil
}

// acceptLoop admits inbound peer sessions: the first frame must be a hello
// identifying the dialer; we answer with our own hello.
func (r *Replica) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			frame, err := conn.Recv()
			if err != nil {
				_ = conn.Close()
				return
			}
			m, err := decodeMessage(frame)
			if err != nil || m.typ != msgHello {
				_ = conn.Close()
				return
			}
			if err := conn.Send(encodeHello(r.cfg.Name, r.addr)); err != nil {
				_ = conn.Close()
				return
			}
			s := r.addSession(conn, m.name, m.addr)
			if s == nil {
				_ = conn.Close()
				return
			}
			r.readLoop(s)
		}()
	}
}

// addSession registers a live peer session, replacing any stale one to the
// same address. Returns nil when the replica is closed.
func (r *Replica) addSession(conn transport.Conn, peerName, peerAddr string) *session {
	s := &session{conn: conn, peerAddr: peerAddr, peerName: peerName, closed: make(chan struct{})}
	r.mu.Lock()
	select {
	case <-r.closed:
		r.mu.Unlock()
		return nil
	default:
	}
	if old, ok := r.sessions[peerAddr]; ok {
		old.close()
	}
	r.sessions[peerAddr] = s
	r.mu.Unlock()
	return s
}

func (r *Replica) dropSession(s *session) {
	r.mu.Lock()
	if r.sessions[s.peerAddr] == s {
		delete(r.sessions, s.peerAddr)
	}
	r.mu.Unlock()
	s.close()
}

// readLoop dispatches one session's inbound messages until the connection
// dies; the supervising runner (on the edge owner) then redials.
func (r *Replica) readLoop(s *session) {
	defer r.dropSession(s)
	for {
		frame, err := s.conn.Recv()
		if err != nil {
			return
		}
		m, err := decodeMessage(frame)
		if err != nil {
			r.cfg.Logger.Warn("malformed replication frame", "peer", s.peerAddr, "err", err)
			continue
		}
		switch m.typ {
		case msgHello:
			r.mu.Lock()
			s.peerName = m.name
			r.mu.Unlock()
		case msgBeat:
			r.handleBeat(s, m)
		case msgFetch:
			r.handleFetch(s, m)
		case msgRecords:
			r.handleRecords(s, m)
		case msgSnapshot:
			r.handleSnapshot(s, m)
		case msgAck:
			r.mu.Lock()
			if m.index > r.acked[s.peerAddr] {
				r.acked[s.peerAddr] = m.index
			}
			r.mu.Unlock()
		case msgForward:
			r.handleForward(s, m)
		case msgFence:
			r.handleFence(m)
		}
	}
}

// electionLoop drives the lease state machine: primaries beat every quarter
// lease; standbys whose lease expired promote after their rank's stagger.
func (r *Replica) electionLoop() {
	defer r.wg.Done()
	clock := r.node.Clock()
	tick := r.lease / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	for {
		select {
		case <-r.closed:
			return
		case <-clock.After(tick):
		}
		now := clock.Now()
		r.mu.Lock()
		if r.primary {
			r.mu.Unlock()
			r.sendBeats()
			continue
		}
		if now.Before(r.leaseUntil) {
			r.mu.Unlock()
			continue
		}
		// Lease expired: promote at leaseUntil + rank×(lease/2), so the
		// best-ranked survivor takes over first and its beats cancel the
		// laggards' countdowns.
		promoteAt := r.leaseUntil.Add(time.Duration(r.rankLocked()) * (r.lease / 2))
		if now.Before(promoteAt) {
			r.mu.Unlock()
			continue
		}
		r.epoch++
		epoch := r.epoch
		r.primary = true
		r.leaderName, r.leaderAddr = r.cfg.Name, r.addr
		r.acked = make(map[string]uint64)
		// Anything pending is already in our own WAL; as primary we
		// stream it ourselves.
		r.pending = make(map[string][]byte)
		r.mu.Unlock()

		r.d.SetEpoch(epoch) // durable before the first beat announces it
		r.promotions.Inc()
		r.cfg.Logger.Info("promoted to primary", "epoch", epoch)
		r.cfg.Journal.Emit(obs.EventReplicaPromoted, r.cfg.Name,
			fmt.Sprintf("epoch=%d addr=%s", epoch, r.addr))
		r.sendBeats()
	}
}

// rankLocked is this member's position among the sorted member addresses,
// not counting the expired leader (it is the one being replaced).
func (r *Replica) rankLocked() int {
	members := append([]string{r.addr}, r.peers...)
	sort.Strings(members)
	rank := 0
	for _, m := range members {
		if m == r.addr {
			break
		}
		if m == r.leaderAddr {
			continue
		}
		rank++
	}
	return rank
}

// sendBeats announces leadership on every live session.
func (r *Replica) sendBeats() {
	r.mu.Lock()
	if !r.primary {
		r.mu.Unlock()
		return
	}
	epoch := r.epoch
	sessions := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()
	_, last := r.d.WALRange()
	beat := encodeBeat(r.cfg.Name, r.addr, epoch, r.lease, last)
	for _, s := range sessions {
		_ = s.conn.Send(beat)
	}
}

// handleBeat processes a leadership announcement.
func (r *Replica) handleBeat(s *session, m *message) {
	now := r.node.Clock().Now()
	r.mu.Lock()
	if m.epoch < r.epoch {
		// Stale primary: fence it.
		r.fencesSent.Inc()
		r.mu.Unlock()
		_ = s.conn.Send(encodeFence(r.Epoch()))
		return
	}
	demoted := false
	if m.epoch > r.epoch || (!r.primary && m.addr != r.leaderAddr) ||
		(r.primary && m.addr != r.addr && m.addr < r.addr) {
		// Adopt a superior leader. The last clause is the dual-primary
		// tie-break: equal epochs resolve to the lower address.
		demoted = r.primary
		r.primary = false
		r.epoch = m.epoch
		r.leaderName, r.leaderAddr = m.name, m.addr
		s.peerName = m.name
	} else if r.primary {
		// Equal epoch from a higher address: ignore; our beat will win.
		r.mu.Unlock()
		return
	}
	r.leaseUntil = now.Add(m.lease)
	r.lastBeatAt = now
	r.leaderLast = m.lastIndex
	epoch := r.epoch
	needFetch := s.peerAddr == r.leaderAddr && s.fetchedEpoch != epoch
	if needFetch {
		s.fetchedEpoch = epoch
	}
	leaderName := r.leaderName
	r.mu.Unlock()

	if demoted {
		r.demotions.Inc()
		r.cfg.Logger.Info("demoted", "leader", m.addr, "epoch", m.epoch)
		r.cfg.Journal.Emit(obs.EventReplicaDemoted, r.cfg.Name,
			fmt.Sprintf("leader=%s epoch=%d", m.name, m.epoch))
	}
	r.d.SetEpoch(epoch)
	if needFetch {
		from := r.d.AppliedIndex(leaderName) + 1
		r.cfg.Logger.Debug("fetching", "leader", m.name, "epoch", epoch, "from", from)
		_ = s.conn.Send(encodeFetch(from))
	}
	r.flushPending(s)
}

// handleFetch starts streaming this primary's WAL to a standby.
func (r *Replica) handleFetch(s *session, m *message) {
	r.mu.Lock()
	if !r.primary {
		r.mu.Unlock()
		return
	}
	epoch := r.epoch
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.stream(s, m.from, epoch)
	}()
}

// stream ships WAL records to one standby, live-tailing new appends, until
// the session dies or this member loses (or re-wins) leadership. A fetch
// below the compaction horizon falls back to a full snapshot transfer.
func (r *Replica) stream(s *session, from uint64, epoch uint64) {
	clock := r.node.Clock()
	if from == 0 {
		from = 1
	}
	for {
		select {
		case <-s.closed:
			return
		case <-r.closed:
			return
		default:
		}
		r.mu.Lock()
		live := r.primary && r.epoch == epoch
		r.mu.Unlock()
		if !live {
			r.cfg.Logger.Debug("stream ended: leadership changed", "peer", s.peerAddr, "epoch", epoch)
			return
		}
		first, _ := r.d.WALRange()
		var recs [][]byte
		var err error
		if first > 0 && from < first {
			err = wal.ErrNotFound
		} else {
			recs, err = r.d.ReadRecords(from, maxBatchRecords)
		}
		if err == wal.ErrNotFound {
			index, state := r.d.ReplicaSnapshot()
			if sendErr := s.conn.Send(encodeSnapshot(epoch, index, state)); sendErr != nil {
				return
			}
			from = index + 1
			continue
		}
		if err != nil {
			r.cfg.Logger.Warn("stream read failed", "err", err)
			return
		}
		if len(recs) > 0 {
			if sendErr := s.conn.Send(encodeRecords(epoch, from, recs)); sendErr != nil {
				return
			}
			r.streamed.Add(uint64(len(recs)))
			from += uint64(len(recs))
			continue
		}
		// Caught up: wait for the next append (or recheck leadership after
		// a lease, in case we were fenced while idle).
		notify := r.d.WALNotify()
		if notify == nil {
			return
		}
		select {
		case <-notify:
		case <-s.closed:
			return
		case <-r.closed:
			return
		case <-clock.After(r.lease):
		}
	}
}

// handleRecords applies a streamed batch on a standby and acks it.
func (r *Replica) handleRecords(s *session, m *message) {
	r.mu.Lock()
	ok := !r.primary && m.epoch == r.epoch && s.peerAddr == r.leaderAddr
	leaderName := r.leaderName
	r.mu.Unlock()
	if !ok || len(m.recs) == 0 {
		r.cfg.Logger.Debug("records dropped", "peer", s.peerAddr, "epoch", m.epoch, "n", len(m.recs))
		return
	}
	for i, rec := range m.recs {
		if err := r.d.ApplyReplicated(leaderName, m.from+uint64(i), rec); err != nil {
			r.cfg.Logger.Warn("apply failed", "index", m.from+uint64(i), "err", err)
		}
	}
	r.mu.Lock()
	for _, rec := range m.recs {
		delete(r.pending, string(rec)) // forwarded mutations echoed back
	}
	r.mu.Unlock()
	_ = s.conn.Send(encodeAck(m.from + uint64(len(m.recs)) - 1))
}

// handleSnapshot installs a full-state transfer on a standby and acks it.
func (r *Replica) handleSnapshot(s *session, m *message) {
	r.mu.Lock()
	ok := !r.primary && m.epoch == r.epoch && s.peerAddr == r.leaderAddr
	leaderName := r.leaderName
	r.mu.Unlock()
	if !ok {
		return
	}
	if err := r.d.InstallReplicaState(leaderName, m.index, m.state); err != nil {
		r.cfg.Logger.Warn("snapshot install failed", "err", err)
		return
	}
	_ = s.conn.Send(encodeAck(m.index))
}

// handleForward applies a standby-accepted mutation on the primary; the
// resulting WAL append streams it back out to every standby.
func (r *Replica) handleForward(_ *session, m *message) {
	if !r.IsPrimary() || len(m.rec) == 0 {
		return
	}
	if err := r.d.ApplyReplicated("", 0, m.rec); err != nil {
		r.cfg.Logger.Warn("forwarded mutation rejected", "err", err)
	}
}

// handleFence demotes this member when a peer proves a higher epoch.
func (r *Replica) handleFence(m *message) {
	r.mu.Lock()
	if m.epoch <= r.epoch || !r.primary {
		if m.epoch > r.epoch {
			r.epoch = m.epoch
		}
		r.mu.Unlock()
		return
	}
	r.primary = false
	r.epoch = m.epoch
	r.leaderName, r.leaderAddr = "", ""
	// Restart the lease countdown as an ordinary standby; the real leader's
	// next beat will identify itself.
	r.leaseUntil = r.node.Clock().Now().Add(r.lease)
	r.mu.Unlock()
	r.demotions.Inc()
	r.cfg.Journal.Emit(obs.EventReplicaDemoted, r.cfg.Name,
		fmt.Sprintf("fenced epoch=%d", m.epoch))
	r.d.SetEpoch(m.epoch)
}

// maxPending bounds the unconfirmed-forward set; overflow drops the new
// record (soft state: the broker's periodic re-advertisement recreates it).
const maxPending = 4096

// forwardMutation is the BDN's mutation hook: on a standby, ship the record
// to the primary so the whole cluster learns registrations accepted here.
// The record stays pending until it echoes back down the leader's stream.
func (r *Replica) forwardMutation(rec []byte) {
	r.mu.Lock()
	if r.primary {
		// A primary's own WAL append streams out directly.
		r.mu.Unlock()
		return
	}
	if len(r.pending) < maxPending {
		r.pending[string(rec)] = rec
	}
	s := r.sessions[r.leaderAddr]
	r.mu.Unlock()
	if s == nil {
		return // no leader yet; retried on the next beat
	}
	if err := s.conn.Send(encodeForward(rec)); err == nil {
		r.forwards.Inc()
	}
}

// flushPending re-sends unconfirmed forwards to the leader, at most once
// per lease. Called on each beat, with the leader's session.
func (r *Replica) flushPending(s *session) {
	now := r.node.Clock().Now()
	r.mu.Lock()
	if len(r.pending) == 0 || now.Sub(r.flushAt) < r.lease {
		r.mu.Unlock()
		return
	}
	r.flushAt = now
	recs := make([][]byte, 0, len(r.pending))
	for _, rec := range r.pending {
		recs = append(recs, rec)
	}
	r.mu.Unlock()
	for _, rec := range recs {
		if err := s.conn.Send(encodeForward(rec)); err != nil {
			return
		}
		r.forwards.Inc()
	}
}
