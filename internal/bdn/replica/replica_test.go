package replica

import (
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"narada/internal/bdn"
	"narada/internal/broker"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/supervise"
	"narada/internal/transport"
	"narada/internal/wal"
)

// testLease is deliberately generous: the simulation clock advances virtual
// time in leaps whenever goroutines do real work (WAL file I/O, channel
// handoffs), so a tight lease would expire between heartbeats and churn
// elections. Simulated seconds cost ~milliseconds of wall time.
const testLease = 4 * time.Second

// testPolicy redials dead peer sessions fast so failover tests converge
// within a few simulated seconds.
var testPolicy = supervise.Policy{
	BaseBackoff: 50 * time.Millisecond,
	MaxBackoff:  200 * time.Millisecond,
}

type env struct {
	net *simnet.Network
	t   *testing.T
	rng *rand.Rand
}

func newEnv(t *testing.T, seed int64) *env {
	return &env{
		net: simnet.NewPaperWAN(simnet.Config{Scale: 300, Seed: seed}),
		t:   t,
		rng: rand.New(rand.NewSource(seed)),
	}
}

func (e *env) sleep(d time.Duration) { e.net.Clock().Sleep(d) }

// member bundles one cluster node: a durable BDN plus its replication agent.
type member struct {
	name string
	dir  string
	node *transport.SimNode
	ntp  *ntptime.Service
	d    *bdn.BDN
	r    *Replica
}

func (e *env) newMember(name, dir string) *member {
	e.t.Helper()
	skew := e.net.RandomSkew(20 * time.Millisecond)
	node := transport.NewSimNode(e.net, simnet.SiteBloomington, name, skew)
	ntp := ntptime.NewService(node.Clock(), skew, e.rng)
	ntp.InitImmediately()
	return e.newMemberOn(node, ntp, name, dir)
}

// newMemberOn rebuilds a member on an existing node — the restart shape,
// where the data dir survives but listeners rebind on fresh ports.
func (e *env) newMemberOn(node *transport.SimNode, ntp *ntptime.Service, name, dir string) *member {
	e.t.Helper()
	// SyncNever: a real fsync costs milliseconds of wall time, which the
	// accelerated simulation clock turns into whole simulated seconds —
	// longer than the election lease. Durability is not what these tests
	// probe; the persistence suite covers it against a real-time clock.
	d, err := bdn.New(node, ntp, bdn.Config{
		Name:           name,
		DataDir:        dir,
		Fsync:          wal.SyncNever,
		InjectOverhead: time.Millisecond,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		e.t.Fatal(err)
	}
	var logger *slog.Logger
	if testing.Verbose() {
		logger = slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	r, err := New(Config{
		Name:   name,
		Node:   node,
		Store:  d,
		Lease:  testLease,
		Policy: testPolicy,
		Logger: logger,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	return &member{name: name, dir: dir, node: node, ntp: ntp, d: d, r: r}
}

func (m *member) stop() {
	m.r.Close()
	m.d.Close()
}

// cluster builds n members, wires the full peer mesh, and starts them.
func (e *env) cluster(n int) []*member {
	e.t.Helper()
	members := make([]*member, n)
	for i := range members {
		name := fmt.Sprintf("repl-%c", 'a'+i)
		members[i] = e.newMember(name, filepath.Join(e.t.TempDir(), name))
	}
	for i, m := range members {
		peers := make([]string, 0, n-1)
		for j, p := range members {
			if j != i {
				peers = append(peers, p.r.Addr())
			}
		}
		if err := m.r.Start(peers); err != nil {
			e.t.Fatal(err)
		}
		m := m
		e.t.Cleanup(m.stop)
	}
	return members
}

func (e *env) broker(site, name string) *broker.Broker {
	e.t.Helper()
	skew := e.net.RandomSkew(20 * time.Millisecond)
	node := transport.NewSimNode(e.net, site, name, skew)
	ntp := ntptime.NewService(node.Clock(), skew, e.rng)
	ntp.InitImmediately()
	b, err := broker.New(node, ntp, broker.Config{
		LogicalAddress: name,
		Realm:          site,
		Sampler: metrics.NewStaticSampler(metrics.Usage{
			TotalMemBytes: 512 << 20, UsedMemBytes: 64 << 20,
		}),
	})
	if err != nil {
		e.t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(b.Close)
	return b
}

// primaryOf returns the unique primary among live members, or nil.
func primaryOf(members []*member) *member {
	var got *member
	for _, m := range members {
		if m.r.IsPrimary() {
			if got != nil {
				return nil // dual primary: not settled
			}
			got = m
		}
	}
	return got
}

// waitPrimary spins simulated time until exactly one of members is primary.
func (e *env) waitPrimary(members []*member, within time.Duration) *member {
	e.t.Helper()
	deadline := e.net.Clock().Now().Add(within)
	for e.net.Clock().Now().Before(deadline) {
		if p := primaryOf(members); p != nil {
			return p
		}
		e.sleep(100 * time.Millisecond)
	}
	e.t.Fatalf("no single primary within %v", within)
	return nil
}

// waitFollow spins until m acknowledges leader as its primary.
func (e *env) waitFollow(m, leader *member, within time.Duration) {
	e.t.Helper()
	deadline := e.net.Clock().Now().Add(within)
	for e.net.Clock().Now().Before(deadline) {
		if m.r.LeaderAddr() == leader.r.Addr() && !m.r.IsPrimary() {
			return
		}
		e.sleep(100 * time.Millisecond)
	}
	e.t.Fatalf("%s: LeaderAddr = %q, want %q", m.name, m.r.LeaderAddr(), leader.r.Addr())
}

func (e *env) waitCount(m *member, want int, within time.Duration) {
	e.t.Helper()
	deadline := e.net.Clock().Now().Add(within)
	for e.net.Clock().Now().Before(deadline) {
		if m.d.BrokerCount() == want {
			return
		}
		e.sleep(100 * time.Millisecond)
	}
	e.t.Fatalf("%s: BrokerCount = %d, want %d", m.name, m.d.BrokerCount(), want)
}

func TestBootstrapElectsLowestAddress(t *testing.T) {
	e := newEnv(t, 101)
	members := e.cluster(3)
	p := e.waitPrimary(members, 10*testLease)
	if p != members[0] {
		t.Fatalf("primary = %s, want %s (lowest address)", p.name, members[0].name)
	}
	for _, m := range members[1:] {
		e.waitFollow(m, p, 6*testLease)
	}
	if p.r.Epoch() == 0 {
		t.Fatal("promotion did not advance the epoch")
	}
}

func TestPrimaryStreamsRegistrationsToStandbys(t *testing.T) {
	e := newEnv(t, 102)
	members := e.cluster(3)
	p := e.waitPrimary(members, 10*testLease)
	b := e.broker(simnet.SiteFSU, "broker-fsu")
	if err := b.RegisterWithBDN(p.d.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		e.waitCount(m, 1, 6*testLease)
	}
}

func TestStandbyForwardsRegistrationsToPrimary(t *testing.T) {
	e := newEnv(t, 103)
	members := e.cluster(3)
	p := e.waitPrimary(members, 10*testLease)
	var standby *member
	for _, m := range members {
		if m != p {
			standby = m
			break
		}
	}
	b := e.broker(simnet.SiteFSU, "broker-fsu")
	if err := b.RegisterWithBDN(standby.d.Addr()); err != nil {
		t.Fatal(err)
	}
	// The record forwards to the primary, which streams it to everyone.
	for _, m := range members {
		e.waitCount(m, 1, 8*testLease)
	}
}

func TestFailoverPromotesStandbyWithFullTable(t *testing.T) {
	e := newEnv(t, 104)
	members := e.cluster(3)
	p := e.waitPrimary(members, 10*testLease)
	oldEpoch := p.r.Epoch()

	b := e.broker(simnet.SiteFSU, "broker-fsu")
	if err := b.RegisterWithBDN(p.d.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		e.waitCount(m, 1, 6*testLease)
	}

	p.stop()
	survivors := make([]*member, 0, 2)
	for _, m := range members {
		if m != p {
			survivors = append(survivors, m)
		}
	}
	next := e.waitPrimary(survivors, 20*testLease)
	if next.r.Epoch() <= oldEpoch {
		t.Fatalf("promoted epoch %d not above old %d", next.r.Epoch(), oldEpoch)
	}
	// The promoted standby already holds the registration — no re-register.
	if next.d.BrokerCount() != 1 {
		t.Fatalf("promoted standby lost the table: BrokerCount = %d", next.d.BrokerCount())
	}
	for _, m := range survivors {
		if m != next {
			e.waitFollow(m, next, 6*testLease)
		}
	}
}

func TestRestartedPrimaryRejoinsAsStandby(t *testing.T) {
	e := newEnv(t, 105)
	members := e.cluster(3)
	p := e.waitPrimary(members, 10*testLease)

	b := e.broker(simnet.SiteFSU, "broker-fsu")
	if err := b.RegisterWithBDN(p.d.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		e.waitCount(m, 1, 6*testLease)
	}

	p.stop()
	survivors := make([]*member, 0, 2)
	for _, m := range members {
		if m != p {
			survivors = append(survivors, m)
		}
	}
	next := e.waitPrimary(survivors, 20*testLease)

	// Bring the old primary back on its original data dir: it recovers its
	// table from the WAL, hears the new leader's higher epoch, and stays a
	// standby (the dual-primary fence in action).
	back := e.newMemberOn(p.node, p.ntp, p.name, p.dir)
	peers := make([]string, 0, 2)
	for _, m := range survivors {
		peers = append(peers, m.r.Addr())
	}
	if err := back.r.Start(peers); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(back.stop)
	if back.d.BrokerCount() != 1 {
		t.Fatalf("restart lost the table: BrokerCount = %d", back.d.BrokerCount())
	}
	e.sleep(6 * testLease)
	if back.r.IsPrimary() && next.r.IsPrimary() {
		t.Fatal("dual primary persisted after rejoin")
	}
	all := append(append([]*member{}, survivors...), back)
	final := e.waitPrimary(all, 20*testLease)
	if got := back.r.LeaderAddr(); back != final && got != final.r.Addr() {
		t.Fatalf("rejoined member follows %q, want %q", got, final.r.Addr())
	}
}

func TestLateStarterCatchesUpViaSnapshot(t *testing.T) {
	// Three members are configured, but repl-z stays down while the other
	// two elect a leader, take a registration, and compact the WAL behind
	// it. When repl-z finally starts, its from-the-beginning fetch can't be
	// served from records and must fall back to a full snapshot transfer.
	e := newEnv(t, 106)
	a := e.newMember("repl-a", filepath.Join(t.TempDir(), "repl-a"))
	b := e.newMember("repl-b", filepath.Join(t.TempDir(), "repl-b"))
	z := e.newMember("repl-z", filepath.Join(t.TempDir(), "repl-z"))
	if err := a.r.Start([]string{b.r.Addr(), z.r.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.r.Start([]string{a.r.Addr(), z.r.Addr()}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.stop)
	t.Cleanup(b.stop)

	p := e.waitPrimary([]*member{a, b}, 10*testLease)
	bk := e.broker(simnet.SiteFSU, "broker-fsu")
	if err := bk.RegisterWithBDN(p.d.Addr()); err != nil {
		t.Fatal(err)
	}
	e.waitCount(p, 1, 6*testLease)
	if err := p.d.SnapshotNow(); err != nil {
		t.Fatal(err)
	}

	if err := z.r.Start([]string{a.r.Addr(), b.r.Addr()}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(z.stop)
	e.waitCount(z, 1, 20*testLease)
}
