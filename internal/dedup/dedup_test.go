package dedup

import (
	"sync"
	"testing"
	"testing/quick"

	"narada/internal/uuid"
)

func TestSeenFirstTimeFalse(t *testing.T) {
	c := New(10)
	id := uuid.New()
	if c.Seen(id) {
		t.Fatal("first Seen returned true")
	}
	if !c.Seen(id) {
		t.Fatal("second Seen returned false")
	}
}

func TestDefaultCapacity(t *testing.T) {
	if New(0).Capacity() != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", New(0).Capacity(), DefaultCapacity)
	}
	if New(-5).Capacity() != DefaultCapacity {
		t.Fatal("negative capacity not defaulted")
	}
}

func TestEvictionKeepsLastN(t *testing.T) {
	const capacity = 100
	c := New(capacity)
	ids := make([]uuid.UUID, 250)
	for i := range ids {
		ids[i] = uuid.New()
		c.Seen(ids[i])
	}
	// The last `capacity` ids must still be remembered…
	for _, id := range ids[len(ids)-capacity:] {
		if !c.Contains(id) {
			t.Fatalf("recently seen id evicted early")
		}
	}
	// …and everything older must be gone.
	for _, id := range ids[:len(ids)-capacity] {
		if c.Contains(id) {
			t.Fatalf("stale id survived eviction")
		}
	}
	if c.Len() != capacity {
		t.Fatalf("Len = %d, want %d", c.Len(), capacity)
	}
}

func TestDuplicateDoesNotEvict(t *testing.T) {
	c := New(3)
	a, b, d := uuid.New(), uuid.New(), uuid.New()
	c.Seen(a)
	c.Seen(b)
	c.Seen(d)
	// Re-seeing existing ids must not push anything out.
	for i := 0; i < 10; i++ {
		c.Seen(a)
		c.Seen(b)
	}
	if !c.Contains(d) {
		t.Fatal("duplicate insertions evicted a live entry")
	}
}

func TestStats(t *testing.T) {
	c := New(4)
	id := uuid.New()
	c.Seen(id)
	c.Seen(id)
	c.Seen(uuid.New())
	hits, adds := c.Stats()
	if hits != 1 || adds != 2 {
		t.Fatalf("Stats = (%d, %d), want (1, 2)", hits, adds)
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	id := uuid.New()
	c.Seen(id)
	c.Reset()
	if c.Contains(id) || c.Len() != 0 {
		t.Fatal("Reset did not clear the cache")
	}
	hits, adds := c.Stats()
	if hits != 0 || adds != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestLenNeverExceedsCapacity(t *testing.T) {
	f := func(seed [8][16]byte, capacity uint8) bool {
		capN := int(capacity%16) + 1
		c := New(capN)
		for _, b := range seed {
			c.Seen(uuid.UUID(b))
		}
		return c.Len() <= capN
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	shared := uuid.New()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Seen(uuid.New())
				c.Seen(shared)
				c.Contains(shared)
			}
		}()
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len = %d exceeds capacity after concurrent use", c.Len())
	}
}

func TestExactlyOneFirstSeenUnderConcurrency(t *testing.T) {
	// The broker relies on Seen returning false exactly once per UUID so a
	// request is processed exactly once no matter how many links deliver it.
	c := New(1024)
	id := uuid.New()
	const goroutines = 16
	results := make(chan bool, goroutines)
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			results <- c.Seen(id)
		}()
	}
	start.Done()
	wg.Wait()
	close(results)
	fresh := 0
	for dup := range results {
		if !dup {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d goroutines saw the id as fresh, want exactly 1", fresh)
	}
}

func BenchmarkSeen(b *testing.B) {
	c := New(1000)
	ids := make([]uuid.UUID, 4096)
	for i := range ids {
		ids[i] = uuid.New()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Seen(ids[i%len(ids)])
	}
}

// shardedIDs generates ids that cycle shards round-robin, so a sharded
// cache behaves exactly like a global FIFO and eviction is deterministic.
func shardedIDs(n int) []uuid.UUID {
	ids := make([]uuid.UUID, n)
	for i := range ids {
		ids[i][0] = byte(i % numShards)
		ids[i][1] = byte(i >> 16)
		ids[i][2] = byte(i >> 8)
		ids[i][3] = byte(i)
		ids[i][4] = 0xA5 // avoid the zero UUID
	}
	return ids
}

func TestShardedEvictionKeepsLastN(t *testing.T) {
	const capacity = 4096
	c := New(capacity)
	if len(c.shards) != numShards {
		t.Fatalf("expected %d shards for capacity %d, got %d", numShards, capacity, len(c.shards))
	}
	if c.Capacity() != capacity {
		t.Fatalf("Capacity = %d, want %d", c.Capacity(), capacity)
	}
	ids := shardedIDs(2 * capacity)
	for _, id := range ids {
		c.Seen(id)
	}
	for _, id := range ids[len(ids)-capacity:] {
		if !c.Contains(id) {
			t.Fatal("recently seen id evicted early")
		}
	}
	for _, id := range ids[:len(ids)-capacity] {
		if c.Contains(id) {
			t.Fatal("stale id survived eviction")
		}
	}
	if c.Len() != capacity {
		t.Fatalf("Len = %d, want %d", c.Len(), capacity)
	}
}

func TestShardedLenNeverExceedsCapacity(t *testing.T) {
	c := New(shardedMinCapacity)
	for i := 0; i < 4*shardedMinCapacity; i++ {
		c.Seen(uuid.New())
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len = %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

func TestSmallCapacityStaysSingleShard(t *testing.T) {
	if c := New(DefaultCapacity); len(c.shards) != 1 {
		t.Fatalf("capacity %d should use one shard, got %d", DefaultCapacity, len(c.shards))
	}
}

func TestResetClearsOrderRing(t *testing.T) {
	c := New(8)
	for i := 0; i < 8; i++ {
		c.Seen(uuid.New())
	}
	c.Reset()
	var zero uuid.UUID
	for i := range c.shards {
		for _, id := range c.shards[i].order {
			if id != zero {
				t.Fatal("Reset left a stale UUID in the order ring")
			}
		}
	}
}

func BenchmarkSeenParallel(b *testing.B) {
	c := New(4096)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ids := make([]uuid.UUID, 1024)
		for i := range ids {
			ids[i] = uuid.New()
		}
		i := 0
		for pb.Next() {
			c.Seen(ids[i%len(ids)])
			i++
		}
	})
}

// TestStatsConsistentSnapshotRace checks the consistency contract of Stats
// under concurrent writers: every writer performs add/hit pairs (Seen on a
// fresh id, then Seen on the same id again), so at any consistent snapshot
// adds-hits is bounded by the number of writers mid-pair — at most one
// unmatched add per writer. A torn sum over the shards could count one
// writer's in-flight pair on several shards and break the bound. Run with
// -race; a concurrent Reset phase additionally exercises the all-shard
// locking against partial wipes.
func TestStatsConsistentSnapshotRace(t *testing.T) {
	const writers = 8
	c := New(4 * shardedMinCapacity) // sharded: 16 independently locked shards
	if len(c.shards) != numShards {
		t.Fatalf("test needs a sharded cache, got %d shards", len(c.shards))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ops [writers]uint64
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := uuid.New()
				c.Seen(id) // add
				c.Seen(id) // hit (same shard, immediately after)
				ops[g] += 2
			}
		}(g)
	}

	for i := 0; i < 2000; i++ {
		hits, adds := c.Stats()
		if hits > adds {
			t.Errorf("snapshot %d: hits %d > adds %d", i, hits, adds)
			break
		}
		if adds-hits > writers {
			t.Errorf("snapshot %d: torn totals, adds-hits = %d exceeds %d in-flight writers",
				i, adds-hits, writers)
			break
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: every Seen call was counted exactly once, as an add or a hit.
	total := uint64(0)
	for _, n := range ops {
		total += n
	}
	hits, adds := c.Stats()
	if hits+adds != total {
		t.Errorf("final totals: hits %d + adds %d = %d, want %d Seen calls",
			hits, adds, hits+adds, total)
	}

	// Stats racing Reset must see all-or-nothing, never hits > adds from a
	// half-wiped cache.
	stop = make(chan struct{})
	var wg2 sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := uuid.New()
				c.Seen(id)
				c.Seen(id)
			}
		}()
	}
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		for i := 0; i < 200; i++ {
			c.Reset()
		}
	}()
	for i := 0; i < 2000; i++ {
		if hits, adds := c.Stats(); hits > adds {
			t.Errorf("snapshot during Reset: hits %d > adds %d", hits, adds)
			break
		}
	}
	close(stop)
	wg2.Wait()
}
