// Package dedup implements the per-broker duplicate-suppression cache the
// paper mandates: "Every broker keeps track of the last 1000 (this number can
// be configured through the broker configuration file) broker discovery
// requests so that additional CPU/network cycles are not expended on
// previously processed requests."
//
// The cache is a fixed-capacity FIFO set: insertion order decides eviction
// (the *last N seen*, exactly as specified), lookups are O(1), and the whole
// structure is safe for concurrent use by the broker's transport goroutines.
//
// Large caches (the broker's event-flood window) are split into shards
// indexed by the first UUID byte, so concurrent ingress goroutines stop
// serialising on a single mutex. UUIDs are uniformly random, so each shard
// holds a fair 1/N slice of the stream and the aggregate keeps the paper's
// last-N window semantics per shard; small caches stay single-sharded and
// exactly FIFO.
package dedup

import (
	"sync"

	"narada/internal/uuid"
)

// DefaultCapacity mirrors the paper's default of 1000 remembered requests.
const DefaultCapacity = 1000

const (
	// numShards is the shard count for large caches; a power of two so the
	// shard index is a mask of the (uniformly random) first UUID byte.
	numShards = 16
	// shardedMinCapacity is the capacity at which sharding kicks in. Below
	// it the per-shard windows would be too small to approximate the global
	// FIFO, and contention on a small cache is rarely the bottleneck.
	shardedMinCapacity = 2048
)

// shard is one independently locked FIFO window.
type shard struct {
	mu    sync.Mutex
	cap   int
	set   map[uuid.UUID]struct{}
	order []uuid.UUID // ring buffer of insertion order
	head  int         // next slot to overwrite once full
	full  bool
	hits  uint64
	adds  uint64
}

// Cache remembers the most recent Capacity UUIDs it has seen.
type Cache struct {
	cap    int
	shards []shard // length 1 or numShards
}

// New returns a Cache remembering the last capacity UUIDs.
// capacity <= 0 falls back to DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	if capacity >= shardedMinCapacity {
		n = numShards
	}
	per := (capacity + n - 1) / n
	c := &Cache{cap: per * n, shards: make([]shard, n)}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = per
		s.set = make(map[uuid.UUID]struct{}, per)
		s.order = make([]uuid.UUID, per)
	}
	return c
}

func (c *Cache) shardFor(id uuid.UUID) *shard {
	return &c.shards[int(id[0])&(len(c.shards)-1)]
}

// Seen records id and reports whether it had already been seen (and is still
// within the last-capacity window). A true return means "duplicate: skip it".
func (c *Cache) Seen(id uuid.UUID) bool {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.set[id]; dup {
		s.hits++
		return true
	}
	if s.full {
		delete(s.set, s.order[s.head])
	}
	s.order[s.head] = id
	s.set[id] = struct{}{}
	s.head++
	if s.head == s.cap {
		s.head = 0
		s.full = true
	}
	s.adds++
	return false
}

// Contains reports whether id is currently remembered, without recording it.
func (c *Cache) Contains(id uuid.UUID) bool {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.set[id]
	return ok
}

// Len returns the number of UUIDs currently remembered.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.set)
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the configured window size (rounded up to a multiple of
// the shard count for large caches).
func (c *Cache) Capacity() int { return c.cap }

// Stats returns the number of duplicate hits and total distinct insertions,
// used by the broker's usage metrics. All shard locks are held together (in
// shard order, the same order Reset uses) while the counters are read, so
// the totals are a consistent point-in-time snapshot: a concurrent Reset or
// burst of Seen calls can never produce torn sums that mix pre- and
// post-update shard values.
func (c *Cache) Stats() (hits, adds uint64) {
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	for i := range c.shards {
		hits += c.shards[i].hits
		adds += c.shards[i].adds
	}
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
	return hits, adds
}

// Reset forgets everything, including the UUIDs lingering in the order ring's
// backing array, so a reset cache holds no references to old identifiers.
// Like Stats it holds every shard lock at once, so a concurrent Stats sees
// either the whole pre-reset state or all zeros, never a partial wipe.
func (c *Cache) Reset() {
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.set = make(map[uuid.UUID]struct{}, s.cap)
		clear(s.order)
		s.head = 0
		s.full = false
		s.hits = 0
		s.adds = 0
	}
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
}
