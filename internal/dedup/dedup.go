// Package dedup implements the per-broker duplicate-suppression cache the
// paper mandates: "Every broker keeps track of the last 1000 (this number can
// be configured through the broker configuration file) broker discovery
// requests so that additional CPU/network cycles are not expended on
// previously processed requests."
//
// The cache is a fixed-capacity FIFO set: insertion order decides eviction
// (the *last N seen*, exactly as specified), lookups are O(1), and the whole
// structure is safe for concurrent use by the broker's transport goroutines.
package dedup

import (
	"sync"

	"narada/internal/uuid"
)

// DefaultCapacity mirrors the paper's default of 1000 remembered requests.
const DefaultCapacity = 1000

// Cache remembers the most recent Capacity UUIDs it has seen.
type Cache struct {
	mu    sync.Mutex
	cap   int
	set   map[uuid.UUID]struct{}
	order []uuid.UUID // ring buffer of insertion order
	head  int         // next slot to overwrite once full
	full  bool
	hits  uint64
	adds  uint64
}

// New returns a Cache remembering the last capacity UUIDs.
// capacity <= 0 falls back to DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:   capacity,
		set:   make(map[uuid.UUID]struct{}, capacity),
		order: make([]uuid.UUID, capacity),
	}
}

// Seen records id and reports whether it had already been seen (and is still
// within the last-capacity window). A true return means "duplicate: skip it".
func (c *Cache) Seen(id uuid.UUID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.set[id]; dup {
		c.hits++
		return true
	}
	if c.full {
		delete(c.set, c.order[c.head])
	}
	c.order[c.head] = id
	c.set[id] = struct{}{}
	c.head++
	if c.head == c.cap {
		c.head = 0
		c.full = true
	}
	c.adds++
	return false
}

// Contains reports whether id is currently remembered, without recording it.
func (c *Cache) Contains(id uuid.UUID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.set[id]
	return ok
}

// Len returns the number of UUIDs currently remembered.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.set)
}

// Capacity returns the configured window size.
func (c *Cache) Capacity() int { return c.cap }

// Stats returns the number of duplicate hits and total distinct insertions,
// used by the broker's usage metrics.
func (c *Cache) Stats() (hits, adds uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.adds
}

// Reset forgets everything.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.set = make(map[uuid.UUID]struct{}, c.cap)
	c.head = 0
	c.full = false
	c.hits = 0
	c.adds = 0
}
