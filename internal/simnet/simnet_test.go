package simnet

import (
	"fmt"
	"testing"
	"time"
)

// fastWAN returns the paper WAN at high time scale for quick tests.
func fastWAN(t testing.TB, seed int64) *Network {
	t.Helper()
	return NewPaperWAN(Config{Scale: 500, Seed: seed})
}

func TestAddrString(t *testing.T) {
	a := Addr{Site: "fsu", Host: "broker1", Port: 42}
	if got := a.String(); got != "fsu/broker1:42" {
		t.Fatalf("String = %q", got)
	}
}

func TestPaperWANSites(t *testing.T) {
	n := fastWAN(t, 1)
	if got := len(n.Sites()); got != 6 {
		t.Fatalf("site count = %d, want 6", got)
	}
	for _, a := range PaperSiteNames() {
		for _, b := range PaperSiteNames() {
			if _, ok := n.RTT(a, b); !ok {
				t.Fatalf("no RTT between %s and %s", a, b)
			}
		}
	}
	// Transatlantic must be the slowest path from Bloomington.
	cardiff, _ := n.RTT(SiteBloomington, SiteCardiff)
	for _, b := range PaperSiteNames()[1 : len(PaperSiteNames())-1] {
		d, _ := n.RTT(SiteBloomington, b)
		if d > cardiff {
			t.Fatalf("RTT to %s (%v) exceeds Cardiff (%v)", b, d, cardiff)
		}
	}
}

func TestTable1MachinesComplete(t *testing.T) {
	ms := Table1Machines()
	if len(ms) != 5 {
		t.Fatalf("machine count = %d, want 5", len(ms))
	}
	for _, m := range ms {
		if m.Hostname == "" || m.SiteName == "" || m.Spec == "" {
			t.Fatalf("incomplete machine row: %+v", m)
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	n := fastWAN(t, 2)
	a, err := n.ListenPacket(Addr{Site: SiteBloomington, Host: "a"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.ListenPacket(Addr{Site: SiteFSU, Host: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	p, err := b.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Payload) != "ping" || p.From != a.Addr() {
		t.Fatalf("got %q from %v", p.Payload, p.From)
	}
}

func TestPacketDelayMatchesRTT(t *testing.T) {
	n := fastWAN(t, 3)
	a, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "a"})
	b, _ := n.ListenPacket(Addr{Site: SiteCardiff, Host: "b"})
	start := n.Clock().Now()
	if err := a.Send(b.Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	elapsed := n.Clock().Now().Sub(start)
	// One way Bloomington->Cardiff is ~60ms +/- jitter; allow wide envelope
	// for wall-clock scheduling noise at scale.
	if elapsed < 40*time.Millisecond || elapsed > 400*time.Millisecond {
		t.Fatalf("one-way delay = %v, want around 60ms model time", elapsed)
	}
}

func TestPacketLoss(t *testing.T) {
	n := fastWAN(t, 4)
	n.SetLoss(SiteBloomington, SiteFSU, 1.0) // always lose
	a, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "a"})
	b, _ := n.ListenPacket(Addr{Site: SiteFSU, Host: "b"})
	if err := a.Send(b.Addr(), []byte("x")); err != nil {
		t.Fatal(err) // loss is silent
	}
	if _, err := b.RecvTimeout(200 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	_, dropped, _ := n.Counters()
	if dropped == 0 {
		t.Fatal("drop counter not incremented")
	}
}

func TestLocalTrafficNeverLost(t *testing.T) {
	n := NewPaperWAN(Config{Scale: 500, Seed: 5, DefaultLoss: 1.0})
	a, _ := n.ListenPacket(Addr{Site: SiteUMN, Host: "a"})
	b, _ := n.ListenPacket(Addr{Site: SiteUMN, Host: "b"})
	if err := a.Send(b.Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(2 * time.Second); err != nil {
		t.Fatalf("same-site datagram lost: %v", err)
	}
}

func TestPartitionBlocksDatagramsSilently(t *testing.T) {
	n := fastWAN(t, 6)
	n.Partition(SiteBloomington, SiteFSU)
	a, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "a"})
	b, _ := n.ListenPacket(Addr{Site: SiteFSU, Host: "b"})
	if err := a.Send(b.Addr(), []byte("x")); err != nil {
		t.Fatalf("datagram into partition should vanish silently, got %v", err)
	}
	if _, err := b.RecvTimeout(200 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	n.Heal(SiteBloomington, SiteFSU)
	if err := a.Send(b.Addr(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(2 * time.Second); err != nil {
		t.Fatalf("post-heal delivery failed: %v", err)
	}
}

func TestNodeDown(t *testing.T) {
	n := fastWAN(t, 7)
	a, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "a"})
	b, _ := n.ListenPacket(Addr{Site: SiteFSU, Host: "b"})
	n.SetNodeDown(SiteFSU, "b", true)
	_ = a.Send(b.Addr(), []byte("x"))
	if _, err := b.RecvTimeout(200 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("down node received a packet: %v", err)
	}
	n.SetNodeDown(SiteFSU, "b", false)
	_ = a.Send(b.Addr(), []byte("y"))
	if _, err := b.RecvTimeout(2 * time.Second); err != nil {
		t.Fatalf("recovered node did not receive: %v", err)
	}
}

func TestListenPacketAddrInUse(t *testing.T) {
	n := fastWAN(t, 8)
	addr := Addr{Site: SiteUMN, Host: "x", Port: 500}
	if _, err := n.ListenPacket(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ListenPacket(addr); err != ErrAddrInUse {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestListenPacketUnknownSite(t *testing.T) {
	n := fastWAN(t, 9)
	if _, err := n.ListenPacket(Addr{Site: "atlantis", Host: "x"}); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestPacketCloseUnblocksRecv(t *testing.T) {
	n := fastWAN(t, 10)
	a, _ := n.ListenPacket(Addr{Site: SiteUMN, Host: "a"})
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := a.Send(Addr{Site: SiteUMN, Host: "b"}, nil); err != ErrClosed {
		t.Fatalf("Send after close: %v, want ErrClosed", err)
	}
	if err := a.Close(); err != ErrClosed {
		t.Fatalf("double close: %v, want ErrClosed", err)
	}
}

func TestMulticastRealmScoping(t *testing.T) {
	n := fastWAN(t, 11)
	const group = "brokers"
	sender, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "client"})
	sameRealm, _ := n.ListenPacket(Addr{Site: SiteIndianapolis, Host: "b1"})
	otherRealm, _ := n.ListenPacket(Addr{Site: SiteCardiff, Host: "b2"})
	sender.JoinGroup(group)
	sameRealm.JoinGroup(group)
	otherRealm.JoinGroup(group)

	if err := sender.SendGroup(group, []byte("discover")); err != nil {
		t.Fatal(err)
	}
	if _, err := sameRealm.RecvTimeout(2 * time.Second); err != nil {
		t.Fatalf("same-realm member missed multicast: %v", err)
	}
	if _, err := otherRealm.RecvTimeout(200 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("multicast crossed realms: err = %v", err)
	}
	// Sender must not hear its own multicast.
	if _, err := sender.RecvTimeout(200 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("sender received own multicast: %v", err)
	}
}

func TestMulticastLeaveGroup(t *testing.T) {
	n := fastWAN(t, 12)
	s, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "s"})
	m, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "m"})
	m.JoinGroup("g")
	m.LeaveGroup("g")
	_ = s.SendGroup("g", []byte("x"))
	if _, err := m.RecvTimeout(200 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("left member still receives: %v", err)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	n := fastWAN(t, 13)
	l, err := n.Listen(Addr{Site: SiteNCSA, Host: "srv", Port: 900})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		conn *Conn
		err  error
	}
	acceptCh := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		acceptCh <- result{c, err}
	}()
	client, err := n.Dial(Addr{Site: SiteBloomington, Host: "cli"}, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := <-acceptCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	server := r.conn

	if err := client.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := server.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if err := server.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err = client.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
	if client.RemoteAddr() != l.Addr() {
		t.Fatalf("remote addr = %v", client.RemoteAddr())
	}
}

func TestStreamFIFO(t *testing.T) {
	n := fastWAN(t, 14)
	l, _ := n.Listen(Addr{Site: SiteCardiff, Host: "srv", Port: 901})
	go func() {
		srv, err := l.Accept()
		if err != nil {
			return
		}
		for i := 0; i < 200; i++ {
			if err := srv.Send([]byte(fmt.Sprintf("%d", i))); err != nil {
				return
			}
		}
	}()
	cli, err := n.Dial(Addr{Site: SiteBloomington, Host: "c"}, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		got, err := cli.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if string(got) != fmt.Sprintf("%d", i) {
			t.Fatalf("frame %d arrived as %q: order violated", i, got)
		}
	}
}

func TestDialNoListener(t *testing.T) {
	n := fastWAN(t, 15)
	_, err := n.Dial(Addr{Site: SiteUMN, Host: "c"}, Addr{Site: SiteFSU, Host: "s", Port: 1})
	if err != ErrConnRefused {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestDialPartitioned(t *testing.T) {
	n := fastWAN(t, 16)
	l, _ := n.Listen(Addr{Site: SiteFSU, Host: "s", Port: 902})
	n.Partition(SiteUMN, SiteFSU)
	if _, err := n.Dial(Addr{Site: SiteUMN, Host: "c"}, l.Addr()); err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestStreamCloseUnblocksPeer(t *testing.T) {
	n := fastWAN(t, 17)
	l, _ := n.Listen(Addr{Site: SiteUMN, Host: "s", Port: 903})
	acceptCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		acceptCh <- c
	}()
	cli, err := n.Dial(Addr{Site: SiteUMN, Host: "c"}, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-acceptCh
	_ = cli.Close()
	if _, err := srv.RecvTimeout(2 * time.Second); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := cli.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("Send after close: %v, want ErrClosed", err)
	}
}

func TestListenerClose(t *testing.T) {
	n := fastWAN(t, 18)
	l, _ := n.Listen(Addr{Site: SiteUMN, Host: "s", Port: 904})
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = l.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("Accept err = %v, want ErrClosed", err)
	}
	// Address is free again after close.
	if _, err := n.Listen(Addr{Site: SiteUMN, Host: "s", Port: 904}); err != nil {
		t.Fatalf("relisten failed: %v", err)
	}
}

func TestRandomSkewBounded(t *testing.T) {
	n := fastWAN(t, 19)
	max := 20 * time.Millisecond
	for i := 0; i < 500; i++ {
		s := n.RandomSkew(max)
		if s < -max || s > max {
			t.Fatalf("skew %v outside [-%v, %v]", s, max, max)
		}
	}
}

func TestCountersAdvance(t *testing.T) {
	n := fastWAN(t, 20)
	a, _ := n.ListenPacket(Addr{Site: SiteUMN, Host: "a"})
	b, _ := n.ListenPacket(Addr{Site: SiteUMN, Host: "b"})
	_ = a.Send(b.Addr(), []byte("x"))
	sent, _, _ := n.Counters()
	if sent != 1 {
		t.Fatalf("datagramsSent = %d, want 1", sent)
	}
}

func TestBandwidthDelaysLargeMessages(t *testing.T) {
	// 1 MB/s path: a 100 KB datagram adds ~100ms of serialisation delay.
	n := NewPaperWAN(Config{Scale: 300, Seed: 60, BandwidthBps: 1e6})
	a, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "a"})
	b, _ := n.ListenPacket(Addr{Site: SiteIndianapolis, Host: "b"})

	measure := func(size int) time.Duration {
		start := n.Clock().Now()
		if err := a.Send(b.Addr(), make([]byte, size)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.RecvTimeout(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return n.Clock().Now().Sub(start)
	}
	small := measure(100)
	large := measure(100000)
	if large < small+50*time.Millisecond {
		t.Fatalf("bandwidth not modelled: small=%v large=%v", small, large)
	}
}

func TestDuplicateDatagrams(t *testing.T) {
	n := NewPaperWAN(Config{Scale: 300, Seed: 61, DuplicateProb: 1.0})
	a, _ := n.ListenPacket(Addr{Site: SiteBloomington, Host: "a"})
	b, _ := n.ListenPacket(Addr{Site: SiteFSU, Host: "b"})
	if err := a.Send(b.Addr(), []byte("twice")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.RecvTimeout(5 * time.Second); err != nil {
			t.Fatalf("copy %d missing: %v", i, err)
		}
	}
	// Same-site traffic never duplicates.
	c, _ := n.ListenPacket(Addr{Site: SiteFSU, Host: "c"})
	if err := b.Send(c.Addr(), []byte("once")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvTimeout(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvTimeout(300 * time.Millisecond); err != ErrTimeout {
		t.Fatal("same-site datagram duplicated")
	}
}
