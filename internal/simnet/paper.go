package simnet

import "time"

// Site name constants for the paper's Table 1 testbed.
const (
	SiteBloomington  = "bloomington"  // Indiana University, Bloomington, IN (client + BDN)
	SiteIndianapolis = "indianapolis" // complexity.ucs.indiana.edu — SunOS 5.9, Sun-Fire-880
	SiteUMN          = "umn"          // webis.msi.umn.edu — AMD Opteron 240, Minneapolis, MN
	SiteNCSA         = "ncsa"         // tungsten.ncsa.uiuc.edu — NCSA, UIUC, IL
	SiteFSU          = "fsu"          // pamd2.fsit.fsu.edu — Florida State University, FL
	SiteCardiff      = "cardiff"      // bouscat.cs.cf.ac.uk — Cardiff University, UK
)

// Machine reproduces one row of the paper's Table 1.
type Machine struct {
	Hostname string
	SiteName string
	Location string
	Spec     string // uname -a excerpt
	JVM      string
}

// Table1Machines lists the testbed machines exactly as the paper's Table 1
// summarises them.
func Table1Machines() []Machine {
	return []Machine{
		{"complexity.ucs.indiana.edu", SiteIndianapolis, "Indianapolis, IN, USA",
			"SunOS 5.9 Generic sun4u sparc SUNW,Sun-Fire-880", "HotSpot Client VM 1.4.2-beta"},
		{"webis.msi.umn.edu", SiteUMN, "University of Minnesota, Minneapolis, MN, USA",
			"Linux 2.6.9-gentoo-r4 x86_64 AMD Opteron 240", "HotSpot 64-Bit Server VM (Blackdown)"},
		{"tungsten.ncsa.uiuc.edu", SiteNCSA, "NCSA, UIUC, IL, USA",
			"Linux 2.4.20 smp_perfctr_lustre i686", "HotSpot Client VM 1.4.1_01"},
		{"pamd2.fsit.fsu.edu", SiteFSU, "Florida State University, Tallahassee, FL, USA",
			"Linux 2.4.25 i686", "HotSpot Client VM (Blackdown 1.4.2 beta)"},
		{"bouscat.cs.cf.ac.uk", SiteCardiff, "Cardiff University, Cardiff, UK",
			"Linux 2.4.2smp i686", "HotSpot Client VM 1.4.1_01"},
	}
}

// paperRTT is the inter-site round-trip-time matrix in milliseconds,
// estimated from 2005-era Internet2 and transatlantic paths between the
// Table 1 locations. (Substitution for the physical WAN; see DESIGN.md §3.)
var paperRTT = map[pathKey]time.Duration{
	orderedPath(SiteBloomington, SiteIndianapolis): 3 * time.Millisecond,
	orderedPath(SiteBloomington, SiteUMN):          22 * time.Millisecond,
	orderedPath(SiteBloomington, SiteNCSA):         10 * time.Millisecond,
	orderedPath(SiteBloomington, SiteFSU):          35 * time.Millisecond,
	orderedPath(SiteBloomington, SiteCardiff):      120 * time.Millisecond,
	orderedPath(SiteIndianapolis, SiteUMN):         20 * time.Millisecond,
	orderedPath(SiteIndianapolis, SiteNCSA):        9 * time.Millisecond,
	orderedPath(SiteIndianapolis, SiteFSU):         33 * time.Millisecond,
	orderedPath(SiteIndianapolis, SiteCardiff):     118 * time.Millisecond,
	orderedPath(SiteUMN, SiteNCSA):                 15 * time.Millisecond,
	orderedPath(SiteUMN, SiteFSU):                  45 * time.Millisecond,
	orderedPath(SiteUMN, SiteCardiff):              130 * time.Millisecond,
	orderedPath(SiteNCSA, SiteFSU):                 40 * time.Millisecond,
	orderedPath(SiteNCSA, SiteCardiff):             125 * time.Millisecond,
	orderedPath(SiteFSU, SiteCardiff):              135 * time.Millisecond,
}

// PaperSiteNames lists the testbed sites in a stable order.
func PaperSiteNames() []string {
	return []string{SiteBloomington, SiteIndianapolis, SiteUMN, SiteNCSA, SiteFSU, SiteCardiff}
}

// NewPaperWAN builds a Network with the paper's five-site testbed (plus the
// Bloomington client location). Bloomington and Indianapolis share the
// "indiana" multicast realm (the IU campus network — the paper's "lab");
// every other site is its own realm, so multicast never reaches them,
// reproducing the Figure 12 conditions.
func NewPaperWAN(cfg Config) *Network {
	n := New(cfg)
	n.AddSite(Site{Name: SiteBloomington, Location: "Bloomington, IN, USA", Realm: "indiana"})
	n.AddSite(Site{Name: SiteIndianapolis, Location: "Indianapolis, IN, USA", Realm: "indiana"})
	n.AddSite(Site{Name: SiteUMN, Location: "Minneapolis, MN, USA", Realm: "umn"})
	n.AddSite(Site{Name: SiteNCSA, Location: "Urbana-Champaign, IL, USA", Realm: "ncsa"})
	n.AddSite(Site{Name: SiteFSU, Location: "Tallahassee, FL, USA", Realm: "fsu"})
	n.AddSite(Site{Name: SiteCardiff, Location: "Cardiff, UK", Realm: "cardiff"})
	for k, rtt := range paperRTT {
		n.SetRTT(k.a, k.b, rtt)
	}
	return n
}
