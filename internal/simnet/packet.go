package simnet

import (
	"time"
)

// Packet is a received datagram.
type Packet struct {
	From    Addr
	Payload []byte
}

// PacketConn is an unreliable, unordered datagram endpoint (UDP semantics):
// sends may be silently lost on lossy inter-site paths, arrival order follows
// jittered delays, and a full receive buffer drops newest packets exactly as
// a saturated socket buffer would.
type PacketConn struct {
	net  *Network
	addr Addr

	in     chan Packet
	closed chan struct{}
}

const packetBuffer = 512

// ListenPacket opens a datagram endpoint at addr. A Port of 0 allocates one.
func (n *Network) ListenPacket(addr Addr) (*PacketConn, error) {
	if err := n.checkSite(addr); err != nil {
		return nil, err
	}
	if addr.Port == 0 {
		addr.Port = n.AllocPort()
	}
	pc := &PacketConn{
		net:    n,
		addr:   addr,
		in:     make(chan Packet, packetBuffer),
		closed: make(chan struct{}),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.packets[addr]; exists {
		return nil, ErrAddrInUse
	}
	n.packets[addr] = pc
	return pc, nil
}

// Addr returns the endpoint's bound address.
func (pc *PacketConn) Addr() Addr { return pc.addr }

// Send transmits a datagram to the destination endpoint. Loss and partitions
// are applied; a successful return means "handed to the network", never
// "delivered" — exactly UDP's contract.
func (pc *PacketConn) Send(to Addr, payload []byte) error {
	select {
	case <-pc.closed:
		return ErrClosed
	default:
	}
	n := pc.net
	if err := n.checkSite(to); err != nil {
		return err
	}
	n.mu.Lock()
	n.datagramsSent++
	n.mu.Unlock()
	if err := n.pathBlocked(pc.addr, to); err != nil {
		// Datagrams into a partition vanish silently, like real UDP.
		n.noteDrop()
		return nil
	}
	if p := n.lossProb(pc.addr.Site, to.Site); p > 0 && n.roll() < p {
		n.noteDrop()
		return nil
	}
	delay, err := n.oneWay(pc.addr.Site, to.Site, len(payload))
	if err != nil {
		return err
	}
	buf := append([]byte(nil), payload...)
	from := pc.addr
	copies := 1
	if pc.addr.Site != to.Site && n.dupProb > 0 && n.roll() < n.dupProb {
		copies = 2 // duplicated in flight; receivers must dedup
	}
	for i := 0; i < copies; i++ {
		d := delay
		if i > 0 {
			d += delay / 2 // the duplicate trails the original
		}
		go func(d time.Duration) {
			n.clock.Sleep(d)
			n.deliverPacket(to, Packet{From: from, Payload: buf})
		}(d)
	}
	return nil
}

func (n *Network) noteDrop() {
	n.mu.Lock()
	n.datagramsDropped++
	n.mu.Unlock()
}

func (n *Network) deliverPacket(to Addr, p Packet) {
	n.mu.Lock()
	pc, ok := n.packets[to]
	nodeDown := n.down[to.node()]
	n.mu.Unlock()
	if !ok || nodeDown {
		n.noteDrop()
		return
	}
	select {
	case pc.in <- p:
	case <-pc.closed:
		n.noteDrop()
	default:
		// Receive buffer overflow: drop, as a kernel UDP buffer would.
		n.noteDrop()
	}
}

// Recv blocks until a datagram arrives or the endpoint closes.
func (pc *PacketConn) Recv() (Packet, error) {
	select {
	case p := <-pc.in:
		return p, nil
	case <-pc.closed:
		// Drain anything already queued before reporting closure.
		select {
		case p := <-pc.in:
			return p, nil
		default:
			return Packet{}, ErrClosed
		}
	}
}

// RecvTimeout blocks for at most d of model time.
func (pc *PacketConn) RecvTimeout(d time.Duration) (Packet, error) {
	timer := pc.net.clock.After(d)
	select {
	case p := <-pc.in:
		return p, nil
	case <-pc.closed:
		select {
		case p := <-pc.in:
			return p, nil
		default:
			return Packet{}, ErrClosed
		}
	case <-timer:
		return Packet{}, ErrTimeout
	}
}

// Close releases the endpoint and leaves all multicast groups.
func (pc *PacketConn) Close() error {
	n := pc.net
	n.mu.Lock()
	if _, ok := n.packets[pc.addr]; !ok {
		n.mu.Unlock()
		return ErrClosed
	}
	delete(n.packets, pc.addr)
	for k, members := range n.groups {
		delete(members, pc.addr)
		if len(members) == 0 {
			delete(n.groups, k)
		}
	}
	n.mu.Unlock()
	close(pc.closed)
	return nil
}

// JoinGroup subscribes the endpoint to a multicast group. Group traffic is
// realm-scoped: only members whose site shares the sender's realm receive it,
// reproducing the paper's "multicast was disabled for network traffic outside
// the lab".
func (pc *PacketConn) JoinGroup(group string) {
	n := pc.net
	realm := n.realmOf(pc.addr.Site)
	key := groupKey{realm: realm, group: group}
	n.mu.Lock()
	defer n.mu.Unlock()
	members, ok := n.groups[key]
	if !ok {
		members = make(map[Addr]*PacketConn)
		n.groups[key] = members
	}
	members[pc.addr] = pc
}

// LeaveGroup removes the endpoint from a multicast group.
func (pc *PacketConn) LeaveGroup(group string) {
	n := pc.net
	key := groupKey{realm: n.realmOf(pc.addr.Site), group: group}
	n.mu.Lock()
	defer n.mu.Unlock()
	if members, ok := n.groups[key]; ok {
		delete(members, pc.addr)
		if len(members) == 0 {
			delete(n.groups, key)
		}
	}
}

// SendGroup multicasts a datagram to every member of the group within the
// sender's realm (excluding the sender itself). Per-member loss and delay
// apply independently.
func (pc *PacketConn) SendGroup(group string, payload []byte) error {
	select {
	case <-pc.closed:
		return ErrClosed
	default:
	}
	n := pc.net
	key := groupKey{realm: n.realmOf(pc.addr.Site), group: group}
	n.mu.Lock()
	targets := make([]Addr, 0, len(n.groups[key]))
	for a := range n.groups[key] {
		if a != pc.addr {
			targets = append(targets, a)
		}
	}
	n.mu.Unlock()
	for _, to := range targets {
		if err := pc.Send(to, payload); err != nil {
			return err
		}
	}
	return nil
}
