package simnet

import (
	"sync"
	"time"
)

// Conn is a reliable, ordered, message-framed connection (TCP semantics with
// length-prefixed frames, as the real transport uses). Frames are delivered
// exactly once, in order, after the path's jittered one-way delay.
type Conn struct {
	net    *Network
	local  Addr
	remote Addr

	link *link
	in   chan []byte // fed by the peer's delivery goroutine

	sendMu sync.Mutex
	out    chan timedFrame // this side's transmit queue
	lastAt time.Time       // monotone delivery schedule for FIFO
}

type timedFrame struct {
	at      time.Time
	payload []byte
}

// link is the shared state of one connection's two endpoints.
type link struct {
	closed    chan struct{}
	closeOnce sync.Once
}

const streamBacklog = 1024

// Listener accepts incoming stream connections at a fixed address.
type Listener struct {
	net     *Network
	addr    Addr
	backlog chan *Conn
	closed  chan struct{}
	once    sync.Once
}

// Listen opens a stream listener at addr. A Port of 0 allocates one.
func (n *Network) Listen(addr Addr) (*Listener, error) {
	if err := n.checkSite(addr); err != nil {
		return nil, err
	}
	if addr.Port == 0 {
		addr.Port = n.AllocPort()
	}
	l := &Listener{
		net:     n,
		addr:    addr,
		backlog: make(chan *Conn, 64),
		closed:  make(chan struct{}),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, ErrAddrInUse
	}
	n.listeners[addr] = l
	return l, nil
}

// Addr returns the listening address.
func (l *Listener) Addr() Addr { return l.addr }

// Accept blocks until a connection arrives or the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

// Close stops accepting connections. Established connections are unaffected.
func (l *Listener) Close() error {
	l.once.Do(func() {
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
		close(l.closed)
	})
	return nil
}

// Dial establishes a connection from a local address to a listener,
// simulating the TCP three-way handshake (1.5 RTT of model time).
func (n *Network) Dial(from, to Addr) (*Conn, error) {
	if err := n.checkSite(from); err != nil {
		return nil, err
	}
	if err := n.checkSite(to); err != nil {
		return nil, err
	}
	if from.Port == 0 {
		from.Port = n.AllocPort()
	}
	if err := n.pathBlocked(from, to); err != nil {
		return nil, err
	}
	n.mu.Lock()
	l, ok := n.listeners[to]
	n.mu.Unlock()
	if !ok {
		return nil, ErrConnRefused
	}

	oneWay, err := n.oneWay(from.Site, to.Site, 64)
	if err != nil {
		return nil, err
	}
	n.clock.Sleep(3 * oneWay) // SYN, SYN-ACK, ACK

	lk := &link{closed: make(chan struct{})}
	client := &Conn{net: n, local: from, remote: to, link: lk,
		in: make(chan []byte, streamBacklog), out: make(chan timedFrame, streamBacklog)}
	server := &Conn{net: n, local: to, remote: from, link: lk,
		in: make(chan []byte, streamBacklog), out: make(chan timedFrame, streamBacklog)}
	go n.pump(client, server)
	go n.pump(server, client)

	select {
	case l.backlog <- server:
	case <-l.closed:
		lk.close()
		return nil, ErrConnRefused
	}
	return client, nil
}

// pump moves frames from src's transmit queue into dst's receive queue,
// honouring each frame's scheduled delivery time.
func (n *Network) pump(src, dst *Conn) {
	for {
		select {
		case f := <-src.out:
			if wait := f.at.Sub(n.clock.Now()); wait > 0 {
				n.clock.Sleep(wait)
			}
			select {
			case dst.in <- f.payload:
			case <-src.link.closed:
				return
			}
		case <-src.link.closed:
			return
		}
	}
}

func (lk *link) close() {
	lk.closeOnce.Do(func() { close(lk.closed) })
}

// LocalAddr returns this endpoint's address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// Send queues one frame for reliable in-order delivery. It blocks when the
// transmit queue is full (backpressure) and fails if the connection is closed
// or the path is partitioned.
func (c *Conn) Send(payload []byte) error {
	select {
	case <-c.link.closed:
		return ErrClosed
	default:
	}
	if err := c.net.pathBlocked(c.local, c.remote); err != nil {
		return err
	}
	delay, err := c.net.oneWay(c.local.Site, c.remote.Site, len(payload))
	if err != nil {
		return err
	}
	buf := append([]byte(nil), payload...)

	c.sendMu.Lock()
	at := c.net.clock.Now().Add(delay)
	if at.Before(c.lastAt) {
		at = c.lastAt // preserve FIFO under jitter
	}
	c.lastAt = at
	frame := timedFrame{at: at, payload: buf}
	c.sendMu.Unlock()

	c.net.mu.Lock()
	c.net.framesSent++
	c.net.mu.Unlock()

	select {
	case c.out <- frame:
		return nil
	case <-c.link.closed:
		return ErrClosed
	}
}

// Recv blocks until a frame arrives or the connection closes. Frames already
// in flight are still delivered after a close on the other side.
func (c *Conn) Recv() ([]byte, error) {
	select {
	case p := <-c.in:
		return p, nil
	case <-c.link.closed:
		select {
		case p := <-c.in:
			return p, nil
		default:
			return nil, ErrClosed
		}
	}
}

// RecvTimeout blocks for at most d of model time.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	timer := c.net.clock.After(d)
	select {
	case p := <-c.in:
		return p, nil
	case <-c.link.closed:
		select {
		case p := <-c.in:
			return p, nil
		default:
			return nil, ErrClosed
		}
	case <-timer:
		return nil, ErrTimeout
	}
}

// Close tears down both directions of the connection.
func (c *Conn) Close() error {
	c.link.close()
	return nil
}
