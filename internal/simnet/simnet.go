// Package simnet is an in-process wide-area network simulator. It stands in
// for the paper's physical five-site testbed (Table 1): named sites joined by
// a configurable round-trip-time matrix, with jitter, datagram loss,
// realm-scoped multicast, site partitions and node failures.
//
// Two delivery services are provided, mirroring the paper's transport usage:
//
//   - PacketConn: unreliable, unordered datagrams (UDP). Discovery responses
//     and pings travel this way, and the simulator's loss model reproduces
//     the paper's argument that lossy UDP naturally filters far-away brokers.
//   - Conn / Listener: reliable, ordered, connection-oriented message streams
//     (TCP with length-prefixed frames). Broker links, client connections
//     and BDN registrations travel this way.
//
// All latencies are expressed in model time; the network's clock may be a
// ScaledClock so that multi-second model windows run in milliseconds of wall
// time without changing any protocol code.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"narada/internal/ntptime"
)

// Addr identifies a node endpoint within the simulated network.
type Addr struct {
	Site string // site (machine location) name, e.g. "cardiff"
	Host string // node name within the site
	Port int    // endpoint number within the node
}

// String renders the address as site/host:port.
func (a Addr) String() string { return fmt.Sprintf("%s/%s:%d", a.Site, a.Host, a.Port) }

// node returns the address with the port stripped (identifies the process).
func (a Addr) node() Addr { return Addr{Site: a.Site, Host: a.Host} }

// Errors returned by network operations.
var (
	ErrClosed      = errors.New("simnet: endpoint closed")
	ErrUnknownSite = errors.New("simnet: unknown site")
	ErrAddrInUse   = errors.New("simnet: address in use")
	ErrConnRefused = errors.New("simnet: connection refused")
	ErrNoRoute     = errors.New("simnet: no route (partitioned)")
	ErrNodeDown    = errors.New("simnet: node down")
	ErrTimeout     = errors.New("simnet: timeout")
)

// Site describes one location in the simulated WAN.
type Site struct {
	Name     string // short key, e.g. "fsu"
	Location string // human-readable, e.g. "Florida State University, Tallahassee, FL"
	Realm    string // multicast/administrative realm; multicast never crosses realms
}

// Config parameterises a Network.
type Config struct {
	// Scale is model-seconds per wall-second for the network clock; <=0
	// means 1 (real time).
	Scale float64
	// Epoch is the model time at creation; zero means 2005-07-01 UTC, the
	// paper's era.
	Epoch time.Time
	// Seed drives all randomness (jitter, loss, skews); 0 means 1.
	Seed int64
	// JitterFrac is the +/- fractional jitter applied to each one-way delay
	// (e.g. 0.1 = up to 10% deviation). Negative means the default 0.08.
	JitterFrac float64
	// DefaultLoss is the datagram loss probability applied to inter-site
	// paths with no explicit override. Same-site datagrams never use it.
	DefaultLoss float64
	// LocalRTT is the round-trip time between nodes of the same site;
	// 0 means 400 microseconds (a 2005-era LAN).
	LocalRTT time.Duration
	// BandwidthBps models per-path serialisation: every message adds
	// size/bandwidth to its one-way delay. 0 means infinite bandwidth.
	BandwidthBps float64
	// DuplicateProb is the probability an inter-site datagram is delivered
	// twice (real UDP duplicates under retransmitting middleboxes); the
	// protocol's dedup layers must absorb it.
	DuplicateProb float64
}

type pathKey struct{ a, b string }

func orderedPath(a, b string) pathKey {
	if a > b {
		a, b = b, a
	}
	return pathKey{a, b}
}

type groupKey struct {
	realm string
	group string
}

// Network is the simulated WAN. All methods are safe for concurrent use.
type Network struct {
	clock     *ntptime.ScaledClock
	jitter    float64
	localRTT  time.Duration
	defLoss   float64
	bandwidth float64
	dupProb   float64

	mu          sync.Mutex
	rng         *rand.Rand
	sites       map[string]Site
	rtt         map[pathKey]time.Duration
	loss        map[pathKey]float64
	partitioned map[pathKey]bool
	down        map[Addr]bool // keyed by node (port 0)
	packets     map[Addr]*PacketConn
	listeners   map[Addr]*Listener
	groups      map[groupKey]map[Addr]*PacketConn
	nextPort    int

	// Counters for experiment reporting.
	datagramsSent    uint64
	datagramsDropped uint64
	framesSent       uint64
}

// New creates an empty Network; add sites and RTTs before creating endpoints.
func New(cfg Config) *Network {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2005, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.JitterFrac < 0 {
		cfg.JitterFrac = 0.08
	}
	if cfg.LocalRTT == 0 {
		cfg.LocalRTT = 400 * time.Microsecond
	}
	return &Network{
		clock:       ntptime.NewScaledClock(cfg.Epoch, cfg.Scale),
		jitter:      cfg.JitterFrac,
		localRTT:    cfg.LocalRTT,
		defLoss:     cfg.DefaultLoss,
		bandwidth:   cfg.BandwidthBps,
		dupProb:     cfg.DuplicateProb,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		sites:       make(map[string]Site),
		rtt:         make(map[pathKey]time.Duration),
		loss:        make(map[pathKey]float64),
		partitioned: make(map[pathKey]bool),
		down:        make(map[Addr]bool),
		packets:     make(map[Addr]*PacketConn),
		listeners:   make(map[Addr]*Listener),
		groups:      make(map[groupKey]map[Addr]*PacketConn),
		nextPort:    10000,
	}
}

// Clock returns the network's model clock.
func (n *Network) Clock() ntptime.Clock { return n.clock }

// NodeClock returns a per-node clock skewed from the network clock by skew,
// modelling an unsynchronised hardware clock.
func (n *Network) NodeClock(skew time.Duration) ntptime.Clock {
	return ntptime.NewSkewedClock(n.clock, skew)
}

// RandomSkew draws a node clock skew uniformly from [-max, max].
func (n *Network) RandomSkew(max time.Duration) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Duration(n.rng.Int63n(int64(2*max+1))) - max
}

// AddSite registers a site.
func (n *Network) AddSite(s Site) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s.Realm == "" {
		s.Realm = s.Name
	}
	n.sites[s.Name] = s
}

// Sites returns all registered sites sorted by name.
func (n *Network) Sites() []Site {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Site, 0, len(n.sites))
	for _, s := range n.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetRTT sets the symmetric round-trip time between two sites.
func (n *Network) SetRTT(a, b string, rtt time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rtt[orderedPath(a, b)] = rtt
}

// RTT returns the configured RTT between two sites (LocalRTT when a == b,
// 0 and false when the pair has no configured path).
func (n *Network) RTT(a, b string) (time.Duration, bool) {
	if a == b {
		return n.localRTT, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	d, ok := n.rtt[orderedPath(a, b)]
	return d, ok
}

// SetLoss overrides the datagram loss probability on one site pair.
func (n *Network) SetLoss(a, b string, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss[orderedPath(a, b)] = p
}

// Partition cuts all traffic between two sites until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[orderedPath(a, b)] = true
}

// Heal restores traffic between two sites.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, orderedPath(a, b))
}

// SetNodeDown marks every endpoint of a node unreachable (crash-stop).
func (n *Network) SetNodeDown(site, host string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := Addr{Site: site, Host: host}
	if down {
		n.down[key] = true
	} else {
		delete(n.down, key)
	}
}

// AllocPort returns a fresh unused port number.
func (n *Network) AllocPort() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextPort++
	return n.nextPort
}

// Counters reports datagrams sent/dropped and stream frames sent since start.
func (n *Network) Counters() (datagramsSent, datagramsDropped, framesSent uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.datagramsSent, n.datagramsDropped, n.framesSent
}

// oneWay computes a jittered one-way delay between two sites for a message
// of the given size, or an error if no path exists. Caller must not hold
// n.mu.
func (n *Network) oneWay(from, to string, size int) (time.Duration, error) {
	var base time.Duration
	if from == to {
		base = n.localRTT / 2
	} else {
		n.mu.Lock()
		rtt, ok := n.rtt[orderedPath(from, to)]
		n.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("%w: %s <-> %s", ErrUnknownSite, from, to)
		}
		base = rtt / 2
	}
	n.mu.Lock()
	j := 1 + (n.rng.Float64()*2-1)*n.jitter
	n.mu.Unlock()
	d := time.Duration(float64(base) * j)
	if n.bandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / n.bandwidth * float64(time.Second))
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// pathBlocked reports whether traffic between the sites is cut or either
// endpoint's node is down. Caller must not hold n.mu.
func (n *Network) pathBlocked(from, to Addr) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitioned[orderedPath(from.Site, to.Site)] {
		return ErrNoRoute
	}
	if n.down[from.node()] || n.down[to.node()] {
		return ErrNodeDown
	}
	return nil
}

// lossProb returns the datagram loss probability for a path.
func (n *Network) lossProb(from, to string) float64 {
	if from == to {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.loss[orderedPath(from, to)]; ok {
		return p
	}
	return n.defLoss
}

func (n *Network) roll() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

// checkSite validates that an address names a known site.
func (n *Network) checkSite(a Addr) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.sites[a.Site]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSite, a.Site)
	}
	return nil
}

// realmOf returns the multicast realm of a site.
func (n *Network) realmOf(site string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sites[site].Realm
}
