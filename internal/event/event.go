// Package event defines the NaradaBrokering event: the unit of information
// flow through the substrate. Events carry expressive power at multiple
// levels (transport, protocol, service, application); here that manifests as
// a typed envelope with routing metadata (topic, source, TTL), an NTP
// timestamp, free-form headers and an opaque payload whose interpretation is
// fixed by the event type (publish bodies, discovery requests/responses,
// advertisements, pings…).
package event

import (
	"fmt"
	"strconv"
	"time"

	"narada/internal/uuid"
	"narada/internal/wire"
)

// Type discriminates event payloads.
type Type uint8

// Event types used by the substrate and the discovery protocol.
const (
	TypeInvalid           Type = iota
	TypePublish                // application data on a topic
	TypeSubscribe              // subscription registration (client -> broker)
	TypeUnsubscribe            // subscription removal
	TypeAdvertisement          // BrokerAdvertisement body (broker -> BDN / topic)
	TypeDiscoveryRequest       // BrokerDiscoveryRequest body
	TypeDiscoveryResponse      // BrokerDiscoveryResponse body (UDP to requester)
	TypeDiscoveryAck           // BDN acknowledgement of a discovery request
	TypePing                   // UDP ping carrying the sender's timestamp
	TypePong                   // UDP ping reply echoing the request timestamp
	TypeLinkHello              // broker-to-broker link establishment
	TypeLinkHeartbeat          // broker link keepalive
	TypeControl                // substrate control messages
	typeMax
)

var typeNames = map[Type]string{
	TypePublish:           "publish",
	TypeSubscribe:         "subscribe",
	TypeUnsubscribe:       "unsubscribe",
	TypeAdvertisement:     "advertisement",
	TypeDiscoveryRequest:  "discovery-request",
	TypeDiscoveryResponse: "discovery-response",
	TypeDiscoveryAck:      "discovery-ack",
	TypePing:              "ping",
	TypePong:              "pong",
	TypeLinkHello:         "link-hello",
	TypeLinkHeartbeat:     "link-heartbeat",
	TypeControl:           "control",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("event.Type(%d)", uint8(t))
}

// Valid reports whether t is a defined event type.
func (t Type) Valid() bool { return t > TypeInvalid && t < typeMax }

// DefaultTTL is the hop budget for events disseminated through the broker
// network; generous enough for any of the paper's topologies (a five-broker
// chain needs 5) with headroom for larger deployments.
const DefaultTTL = 32

// Event is the envelope routed through the substrate.
type Event struct {
	Type      Type
	ID        uuid.UUID         // event identity (dedup, correlation)
	Topic     string            // '/'-separated routing topic; may be empty
	Source    string            // logical address of the originating entity
	Timestamp time.Time         // NTP UTC at creation
	TTL       uint8             // remaining hop budget
	Headers   map[string]string // free-form metadata
	Payload   []byte            // type-specific body
}

// New creates an event of the given type with a fresh ID and default TTL.
func New(t Type, topic string, payload []byte) *Event {
	return &Event{
		Type:    t,
		ID:      uuid.New(),
		Topic:   topic,
		TTL:     DefaultTTL,
		Payload: payload,
	}
}

// Trace-context headers. Every discovery-related frame (request, BDN
// ack/inject, broker fan-out, response, ping, pong) carries the request UUID,
// the originating node's identity and the dissemination hop count, so each
// process the request crosses can record its spans against the same trace and
// a collector can assemble the end-to-end picture.
const (
	HeaderTraceID     = "trace-id"     // request UUID keying the trace
	HeaderTraceOrigin = "trace-origin" // node that issued the request
	HeaderTraceHop    = "trace-hop"    // dissemination hops from the origin
)

// SetTrace stamps the trace-context headers onto the event.
func (e *Event) SetTrace(id, origin string, hop uint8) {
	e.SetHeader(HeaderTraceID, id)
	e.SetHeader(HeaderTraceOrigin, origin)
	e.SetHeader(HeaderTraceHop, strconv.Itoa(int(hop)))
}

// Trace reads the trace-context headers. ok is false when the frame carries
// no trace context (pre-propagation peers, non-discovery traffic); a missing
// or malformed hop header reads as 0.
func (e *Event) Trace() (id, origin string, hop uint8, ok bool) {
	id = e.Header(HeaderTraceID)
	if id == "" {
		return "", "", 0, false
	}
	if h, err := strconv.Atoi(e.Header(HeaderTraceHop)); err == nil && h >= 0 && h <= 255 {
		hop = uint8(h)
	}
	return id, e.Header(HeaderTraceOrigin), hop, true
}

// Message-trace headers. A broker (or an instrumented publisher) that
// samples a publish stamps these so every hop downstream records its spans
// against the same trace — keyed by the event UUID, so no separate trace-id
// header is needed. Unsampled messages carry no headers at all: the sampling
// decision is made once, at publish, and the unsampled path never allocates.
const (
	HeaderMsgSampled = "msg-sampled" // "1" when the message is traced
	HeaderMsgOrigin  = "msg-origin"  // node that made the sampling decision
	HeaderMsgHop     = "msg-hop"     // broker hops from the origin
)

// SetMsgTrace marks the event as sampled for message-path tracing.
func (e *Event) SetMsgTrace(origin string, hop uint8) {
	e.SetHeader(HeaderMsgSampled, "1")
	e.SetHeader(HeaderMsgOrigin, origin)
	e.SetHeader(HeaderMsgHop, strconv.Itoa(int(hop)))
}

// MsgTrace reads the message-trace headers. sampled is false for the common
// unsampled message (possibly with a nil header map); a missing or malformed
// hop header reads as 0.
func (e *Event) MsgTrace() (origin string, hop uint8, sampled bool) {
	if e.Headers == nil || e.Headers[HeaderMsgSampled] != "1" {
		return "", 0, false
	}
	if h, err := strconv.Atoi(e.Headers[HeaderMsgHop]); err == nil && h >= 0 && h <= 255 {
		hop = uint8(h)
	}
	return e.Headers[HeaderMsgOrigin], hop, true
}

// MsgSampled reports whether the event carries the sampled flag, without
// touching the header map when it is nil (the publish fast path).
func (e *Event) MsgSampled() bool {
	return e.Headers != nil && e.Headers[HeaderMsgSampled] == "1"
}

// Header returns a header value ("" when absent).
func (e *Event) Header(k string) string { return e.Headers[k] }

// SetHeader sets a header value, allocating the map on first use.
func (e *Event) SetHeader(k, v string) {
	if e.Headers == nil {
		e.Headers = make(map[string]string, 4)
	}
	e.Headers[k] = v
}

// Clone returns a deep copy (used when fanning an event out over links).
func (e *Event) Clone() *Event {
	c := *e
	if e.Headers != nil {
		c.Headers = make(map[string]string, len(e.Headers))
		for k, v := range e.Headers {
			c.Headers[k] = v
		}
	}
	if e.Payload != nil {
		c.Payload = append([]byte(nil), e.Payload...)
	}
	return &c
}

// Codec framing constants.
const (
	magic   byte = 0xB7 // "NaradaBrokering" frame marker
	version byte = 1
)

// Encode serialises the event with the wire codec. The returned frame is
// freshly allocated and owned by the caller; the Writer itself is pooled.
func Encode(e *Event) []byte {
	size := 64 + len(e.Topic) + len(e.Source) + len(e.Payload)
	for k, v := range e.Headers {
		size += len(k) + len(v) + 4
	}
	w := wire.GetWriter(size)
	EncodeTo(w, e)
	frame := w.Detach()
	w.Release()
	return frame
}

// Append serialises the event onto buf (truncated to zero length) and
// returns the extended slice. Unlike Encode it allocates only when buf's
// capacity is insufficient, which is what the broker's ref-counted frame
// pool relies on to keep the publish fan-out allocation-free.
func Append(buf []byte, e *Event) []byte {
	var w wire.Writer
	w.ResetWith(buf)
	EncodeTo(&w, e)
	return w.Bytes()
}

// EncodeTo serialises the event into an existing writer, letting callers
// that control the frame's lifecycle reuse buffers.
func EncodeTo(w *wire.Writer, e *Event) {
	w.Byte(magic)
	w.Byte(version)
	w.Byte(byte(e.Type))
	w.Bytes16([16]byte(e.ID))
	w.String(e.Topic)
	w.String(e.Source)
	w.Time(e.Timestamp)
	w.Byte(e.TTL)
	w.StringMap(e.Headers)
	w.BytesField(e.Payload)
}

// Decode parses an encoded event, validating framing and type.
func Decode(b []byte) (*Event, error) {
	r := wire.NewReader(b)
	if m := r.Byte(); r.Err() == nil && m != magic {
		return nil, fmt.Errorf("event: bad magic 0x%02x", m)
	}
	if v := r.Byte(); r.Err() == nil && v != version {
		return nil, fmt.Errorf("event: unsupported version %d", v)
	}
	e := &Event{}
	e.Type = Type(r.Byte())
	e.ID = uuid.UUID(r.Bytes16())
	e.Topic = r.String()
	e.Source = r.String()
	e.Timestamp = r.Time()
	e.TTL = r.Byte()
	e.Headers = r.StringMap()
	e.Payload = r.BytesField()
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("event: %w", err)
	}
	if !e.Type.Valid() {
		return nil, fmt.Errorf("event: invalid type %d", e.Type)
	}
	return e, nil
}
