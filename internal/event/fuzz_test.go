package event

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics: brokers decode frames straight off the wire, so the
// event decoder must survive arbitrary input with an error, never a panic.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(512)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %d random bytes: %v", n, r)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
	// Bit flips over a valid frame.
	blob := Encode(sampleEvent())
	for i := range blob {
		mutated := append([]byte(nil), blob...)
		mutated[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with byte %d flipped: %v", i, r)
				}
			}()
			_, _ = Decode(mutated)
		}()
	}
}
