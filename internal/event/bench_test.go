package event

import "testing"

// benchEvent mirrors a typical substrate publish: a topic, source, two
// headers and a 256-byte payload.
func benchEvent() *Event {
	ev := New(TypePublish, "Services/app0/Events/State", make([]byte, 256))
	ev.Source = "broker-1"
	ev.SetHeader("content-type", "octet-stream")
	ev.SetHeader("origin", "bench")
	return ev
}

// BenchmarkEventCodec measures the wire codec on the publish envelope, the
// per-frame cost paid on every hop through the substrate.
func BenchmarkEventCodec(b *testing.B) {
	ev := benchEvent()
	frame := Encode(ev)
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Encode(ev)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}
