package event

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"narada/internal/uuid"
)

func sampleEvent() *Event {
	e := New(TypePublish, "Services/BrokerDiscoveryNodes/BrokerAdvertisement", []byte("body"))
	e.Source = "broker-fsu-1"
	e.Timestamp = time.Date(2005, 7, 1, 9, 0, 0, 0, time.UTC)
	e.SetHeader("geo", "Tallahassee, FL")
	e.SetHeader("institution", "FSU")
	return e
}

func TestNewDefaults(t *testing.T) {
	e := New(TypePing, "a/b", nil)
	if e.ID.IsNil() {
		t.Fatal("New did not assign an ID")
	}
	if e.TTL != DefaultTTL {
		t.Fatalf("TTL = %d, want %d", e.TTL, DefaultTTL)
	}
	if e.Type != TypePing || e.Topic != "a/b" {
		t.Fatalf("envelope wrong: %+v", e)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := sampleEvent()
	got, err := Decode(Encode(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != e.Type || got.ID != e.ID || got.Topic != e.Topic ||
		got.Source != e.Source || !got.Timestamp.Equal(e.Timestamp) || got.TTL != e.TTL {
		t.Fatalf("envelope mismatch:\n got %+v\nwant %+v", got, e)
	}
	if string(got.Payload) != "body" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if got.Header("geo") != "Tallahassee, FL" || got.Header("institution") != "FSU" {
		t.Fatalf("headers = %v", got.Headers)
	}
}

func TestDecodePropertyRoundTrip(t *testing.T) {
	f := func(id [16]byte, topic, source, payload string, ttl uint8, typeRaw uint8) bool {
		typ := Type(typeRaw%uint8(typeMax-1)) + 1
		e := &Event{
			Type:    typ,
			ID:      uuid.UUID(id),
			Topic:   topic,
			Source:  source,
			TTL:     ttl,
			Payload: []byte(payload),
		}
		got, err := Decode(Encode(e))
		if err != nil {
			return false
		}
		return got.Type == typ && got.ID == e.ID && got.Topic == topic &&
			got.Source == source && got.TTL == ttl && string(got.Payload) == payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	b := Encode(sampleEvent())
	b[0] = 0x00
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v, want bad-magic error", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	b := Encode(sampleEvent())
	b[1] = 99
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version error", err)
	}
}

func TestDecodeRejectsInvalidType(t *testing.T) {
	e := sampleEvent()
	e.Type = typeMax
	if _, err := Decode(Encode(e)); err == nil {
		t.Fatal("invalid type accepted")
	}
	e.Type = TypeInvalid
	if _, err := Decode(Encode(e)); err == nil {
		t.Fatal("zero type accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	b := Encode(sampleEvent())
	for _, cut := range []int{0, 1, 5, len(b) / 2, len(b) - 1} {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	b := append(Encode(sampleEvent()), 0xFF)
	if _, err := Decode(b); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := sampleEvent()
	c := e.Clone()
	c.Payload[0] = 'X'
	c.SetHeader("geo", "elsewhere")
	if e.Payload[0] == 'X' {
		t.Fatal("payload aliased")
	}
	if e.Header("geo") != "Tallahassee, FL" {
		t.Fatal("headers aliased")
	}
}

func TestTypeString(t *testing.T) {
	if TypeDiscoveryRequest.String() != "discovery-request" {
		t.Fatalf("String = %q", TypeDiscoveryRequest.String())
	}
	if !strings.Contains(Type(200).String(), "200") {
		t.Fatalf("unknown type String = %q", Type(200).String())
	}
}

func TestTypeValid(t *testing.T) {
	for typ := TypePublish; typ < typeMax; typ++ {
		if !typ.Valid() {
			t.Errorf("type %v reported invalid", typ)
		}
	}
	if TypeInvalid.Valid() || typeMax.Valid() {
		t.Error("out-of-range type reported valid")
	}
}

func BenchmarkEncode(b *testing.B) {
	e := sampleEvent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(e)
	}
}

func BenchmarkDecode(b *testing.B) {
	buf := Encode(sampleEvent())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTraceContextRoundTrip pins the trace-context header contract: SetTrace
// populates the reserved headers, Trace reads them back, and both survive the
// wire — so a request UUID, origin node and hop count propagate across every
// discovery frame untouched.
func TestTraceContextRoundTrip(t *testing.T) {
	ev := New(TypeDiscoveryRequest, "topic", []byte("payload"))
	if _, _, _, ok := ev.Trace(); ok {
		t.Fatal("fresh event claims trace context")
	}
	ev.SetTrace("6ba7b810-9dad-11d1-80b4-00c04fd430c8", "requester-1", 3)

	decoded, err := Decode(Encode(ev))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	id, origin, hop, ok := decoded.Trace()
	if !ok || id != "6ba7b810-9dad-11d1-80b4-00c04fd430c8" || origin != "requester-1" || hop != 3 {
		t.Fatalf("Trace() = %q %q %d %v after round-trip", id, origin, hop, ok)
	}

	// Re-stamping overwrites in place (brokers bump the hop on fan-out).
	decoded.SetTrace(id, origin, 4)
	if _, _, hop, _ = decoded.Trace(); hop != 4 {
		t.Fatalf("hop = %d after re-stamp, want 4", hop)
	}
}

func TestMsgTraceHeadersRoundTrip(t *testing.T) {
	ev := New(TypePublish, "sensors/temp", []byte("p"))
	if ev.MsgSampled() {
		t.Fatal("fresh event claims sampled")
	}
	if _, _, sampled := ev.MsgTrace(); sampled {
		t.Fatal("fresh event yields trace headers")
	}

	ev.SetMsgTrace("broker-a", 0)
	if !ev.MsgSampled() {
		t.Fatal("sampled flag lost after SetMsgTrace")
	}

	// The verdict must survive the wire: this is what carries sampling
	// across broker links.
	decoded, err := Decode(Encode(ev))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	origin, hop, sampled := decoded.MsgTrace()
	if !sampled || origin != "broker-a" || hop != 0 {
		t.Fatalf("MsgTrace() = %q %d %v after round-trip", origin, hop, sampled)
	}

	// Forwarding brokers advance only the hop header.
	decoded.SetHeader(HeaderMsgHop, "3")
	if _, hop, _ = decoded.MsgTrace(); hop != 3 {
		t.Fatalf("hop = %d after re-stamp, want 3", hop)
	}
}

func TestMsgTraceMalformedHop(t *testing.T) {
	ev := New(TypePublish, "a", nil)
	ev.SetHeader(HeaderMsgSampled, "1")
	ev.SetHeader(HeaderMsgOrigin, "b1")
	for _, bad := range []string{"", "x", "-1", "256", "9999999999999999999"} {
		ev.SetHeader(HeaderMsgHop, bad)
		origin, hop, sampled := ev.MsgTrace()
		if !sampled || origin != "b1" || hop != 0 {
			t.Fatalf("hop %q: MsgTrace() = %q %d %v, want b1/0/true", bad, origin, hop, sampled)
		}
	}
}
