// Package wire provides the low-level binary encoding used by every NaradaBrokering
// message: sticky-error writers and readers over length-delimited fields with
// unsigned varints, in the spirit of encoding/binary. Keeping the primitives
// in one place lets the event envelope and the discovery message bodies share
// identical framing rules and bounds checks.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Limits protecting decoders from malformed or hostile input.
const (
	MaxStringLen = 1 << 16 // 64 KiB per string field
	MaxBytesLen  = 1 << 24 // 16 MiB per payload
	MaxListLen   = 1 << 16 // 64 Ki elements per list
)

// Decode errors.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrTooLarge  = errors.New("wire: field exceeds size limit")
	ErrTrailing  = errors.New("wire: trailing bytes after message")
)

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// maxPooledCap caps the buffer capacity retained by pooled writers, so one
// jumbo frame does not pin megabytes inside the pool forever.
const maxPooledCap = 1 << 16

// writerPool recycles Writer structs (and their grown buffers) across
// messages; encoding is the per-frame hot path of the whole substrate.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns a pooled Writer with at least capacity bytes of buffer.
// Pair it with Release; take ownership of encoded bytes with Detach first.
func GetWriter(capacity int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < capacity {
		w.buf = make([]byte, 0, capacity)
	} else {
		w.buf = w.buf[:0]
	}
	return w
}

// Release returns w to the pool. The buffer is retained for reuse, so the
// caller must not hold on to slices obtained from Bytes — use Detach to keep
// the encoded message alive past Release.
func (w *Writer) Release() {
	if cap(w.buf) > maxPooledCap {
		w.buf = nil
	}
	writerPool.Put(w)
}

// Detach hands ownership of the encoded bytes to the caller, stripping the
// buffer from the writer so a subsequent Release cannot alias the frame.
func (w *Writer) Detach() []byte {
	b := w.buf
	w.buf = nil
	return b
}

// Bytes returns the encoded message.
func (w *Writer) Bytes() []byte { return w.buf }

// ResetWith points the writer at a caller-owned buffer, truncated to zero
// length. Encoding then appends in place, so a caller recycling its own
// frame buffers (e.g. a ref-counted frame pool) pays no allocation when the
// buffer's capacity already fits the message; take the possibly-regrown
// result back with Bytes.
func (w *Writer) ResetWith(buf []byte) { w.buf = buf[:0] }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a signed varint (zig-zag).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Uint64 appends a fixed-width big-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(v float64) {
	w.Uint64(math.Float64bits(v))
}

// Time appends a time as Unix nanoseconds (signed varint).
func (w *Writer) Time(t time.Time) {
	if t.IsZero() {
		w.Varint(0)
		return
	}
	w.Varint(t.UnixNano())
}

// Duration appends a duration in nanoseconds (signed varint).
func (w *Writer) Duration(d time.Duration) { w.Varint(int64(d)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes16 appends a fixed 16-byte array (UUIDs).
func (w *Writer) Bytes16(b [16]byte) {
	w.buf = append(w.buf, b[:]...)
}

// BytesField appends a length-prefixed byte slice.
func (w *Writer) BytesField(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// StringList appends a length-prefixed list of strings.
func (w *Writer) StringList(ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// StringMap appends a length-prefixed map of string pairs in sorted-key order
// is NOT guaranteed; decoding order follows encoding order.
func (w *Writer) StringMap(m map[string]string) {
	w.Uvarint(uint64(len(m)))
	for k, v := range m {
		w.String(k)
		w.String(v)
	}
}

// Reader decodes a message produced by Writer. Errors are sticky: after the
// first failure every subsequent call is a no-op returning zero values, and
// Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps an encoded message.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish verifies the message was fully consumed.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		r.err = fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return r.err
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Uint64 reads a fixed-width big-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(r.Uint64())
}

// Time reads a time encoded by Writer.Time.
func (r *Reader) Time() time.Time {
	ns := r.Varint()
	if r.err != nil || ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Duration reads a duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.Varint()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > MaxStringLen {
		r.fail(fmt.Errorf("%w: string of %d bytes", ErrTooLarge, n))
		return ""
	}
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes16 reads a fixed 16-byte array.
func (r *Reader) Bytes16() [16]byte {
	var out [16]byte
	b := r.take(16)
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// BytesField reads a length-prefixed byte slice (copied out of the buffer).
func (r *Reader) BytesField() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(fmt.Errorf("%w: payload of %d bytes", ErrTooLarge, n))
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// StringList reads a list of strings.
func (r *Reader) StringList() []string {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxListLen {
		r.fail(fmt.Errorf("%w: list of %d elements", ErrTooLarge, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.String())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// StringMap reads a map of string pairs.
func (r *Reader) StringMap() map[string]string {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxListLen {
		r.fail(fmt.Errorf("%w: map of %d entries", ErrTooLarge, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := r.String()
		v := r.String()
		if r.err != nil {
			return nil
		}
		out[k] = v
	}
	return out
}
