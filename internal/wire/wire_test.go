package wire

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Byte(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Uvarint(123456789)
	w.Varint(-987654321)
	w.Uint64(0xDEADBEEFCAFEF00D)
	w.Float64(3.14159)
	w.Duration(42 * time.Millisecond)

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.Uvarint(); got != 123456789 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -987654321 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Uint64(); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("Uint64 = %x", got)
	}
	if got := r.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Duration(); got != 42*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeRoundTrip(t *testing.T) {
	w := NewWriter(32)
	now := time.Date(2005, 7, 1, 10, 30, 0, 123456789, time.UTC)
	w.Time(now)
	w.Time(time.Time{})
	r := NewReader(w.Bytes())
	if got := r.Time(); !got.Equal(now) {
		t.Errorf("Time = %v, want %v", got, now)
	}
	if got := r.Time(); !got.IsZero() {
		t.Errorf("zero Time decoded as %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStringAndBytesRoundTrip(t *testing.T) {
	f := func(s string, b []byte, u [16]byte) bool {
		if len(s) > MaxStringLen || len(b) > MaxBytesLen {
			return true
		}
		w := NewWriter(0)
		w.String(s)
		w.BytesField(b)
		w.Bytes16(u)
		r := NewReader(w.Bytes())
		gs := r.String()
		gb := r.BytesField()
		gu := r.Bytes16()
		if r.Finish() != nil {
			return false
		}
		if gs != s || gu != u {
			return false
		}
		if len(gb) != len(b) {
			return false
		}
		for i := range b {
			if gb[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringListRoundTrip(t *testing.T) {
	f := func(ss []string) bool {
		if len(ss) > MaxListLen {
			return true
		}
		w := NewWriter(0)
		w.StringList(ss)
		r := NewReader(w.Bytes())
		got := r.StringList()
		if r.Finish() != nil {
			return false
		}
		if len(got) != len(ss) {
			return len(ss) == 0 // nil vs empty both fine
		}
		for i := range ss {
			if got[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringMapRoundTrip(t *testing.T) {
	m := map[string]string{"a": "1", "topic": "Services/BDN", "": "empty-key"}
	w := NewWriter(0)
	w.StringMap(m)
	r := NewReader(w.Bytes())
	got := r.StringMap()
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m) {
		t.Fatalf("len = %d, want %d", len(got), len(m))
	}
	for k, v := range m {
		if got[k] != v {
			t.Fatalf("map[%q] = %q, want %q", k, got[k], v)
		}
	}
}

func TestTruncatedInput(t *testing.T) {
	w := NewWriter(0)
	w.String("hello world")
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", r.Err())
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{})
	_ = r.Byte() // fails
	first := r.Err()
	_ = r.Uint64()
	_ = r.String()
	if r.Err() != first {
		t.Fatal("error was overwritten")
	}
}

func TestOversizedStringRejected(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(MaxStringLen + 1)
	r := NewReader(w.Bytes())
	_ = r.String()
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", r.Err())
	}
}

func TestOversizedListRejected(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(MaxListLen + 1)
	r := NewReader(w.Bytes())
	_ = r.StringList()
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", r.Err())
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	w := NewWriter(0)
	w.Byte(1)
	w.Byte(2)
	r := NewReader(w.Bytes())
	_ = r.Byte()
	if err := r.Finish(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestBytesFieldCopies(t *testing.T) {
	w := NewWriter(0)
	w.BytesField([]byte{1, 2, 3})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.BytesField()
	buf[len(buf)-1] = 99 // mutate the backing array
	if got[2] != 3 {
		t.Fatal("BytesField aliases the input buffer")
	}
}

func BenchmarkWriterTypicalMessage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(128)
		w.Byte(5)
		w.Bytes16([16]byte{1, 2, 3})
		w.String("Services/BrokerDiscoveryNodes/BrokerAdvertisement")
		w.Time(time.Unix(1120212000, 0))
		w.Uvarint(8)
		w.BytesField([]byte("payload-payload-payload"))
	}
}

func BenchmarkReaderTypicalMessage(b *testing.B) {
	w := NewWriter(128)
	w.Byte(5)
	w.Bytes16([16]byte{1, 2, 3})
	w.String("Services/BrokerDiscoveryNodes/BrokerAdvertisement")
	w.Time(time.Unix(1120212000, 0))
	w.Uvarint(8)
	w.BytesField([]byte("payload-payload-payload"))
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		_ = r.Byte()
		_ = r.Bytes16()
		_ = r.String()
		_ = r.Time()
		_ = r.Uvarint()
		_ = r.BytesField()
		if r.Finish() != nil {
			b.Fatal(r.Err())
		}
	}
}
