package main

import (
	"os"
	"path/filepath"
	"testing"

	"narada/internal/core"
)

func TestBrokerCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "targets.json")

	// Cold start: no file is not an error and seeds nothing.
	brokers, err := loadBrokerCache(path)
	if err != nil {
		t.Fatalf("load missing: %v", err)
	}
	if len(brokers) != 0 {
		t.Fatalf("load missing: got %d brokers, want 0", len(brokers))
	}

	want := []core.BrokerInfo{
		{LogicalAddress: "broker-a", Hostname: "a.example", Realm: "siteA",
			Endpoints: []core.TransportEndpoint{{Protocol: "tcp", Address: "siteA/a:7000"}}},
		{LogicalAddress: "broker-b", Hostname: "b.example", Realm: "siteB"},
	}
	if err := saveBrokerCache(path, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := loadBrokerCache(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d brokers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LogicalAddress != want[i].LogicalAddress || got[i].Realm != want[i].Realm {
			t.Errorf("broker %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Endpoints[0].Address != "siteA/a:7000" {
		t.Errorf("endpoint lost in round trip: %+v", got[0].Endpoints)
	}

	// A corrupt cache reports its path and does not panic.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBrokerCache(path); err == nil {
		t.Error("corrupt cache: want error, got nil")
	}
}
