package main

import (
	"os"
	"path/filepath"
	"testing"

	"narada/internal/core"
)

func TestBrokerCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "targets.json")

	// Cold start: no file is not an error and seeds nothing.
	brokers, err := loadBrokerCache(path)
	if err != nil {
		t.Fatalf("load missing: %v", err)
	}
	if len(brokers) != 0 {
		t.Fatalf("load missing: got %d brokers, want 0", len(brokers))
	}

	want := []core.BrokerInfo{
		{LogicalAddress: "broker-a", Hostname: "a.example", Realm: "siteA",
			Endpoints: []core.TransportEndpoint{{Protocol: "tcp", Address: "siteA/a:7000"}}},
		{LogicalAddress: "broker-b", Hostname: "b.example", Realm: "siteB"},
	}
	if err := saveBrokerCache(path, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := loadBrokerCache(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d brokers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LogicalAddress != want[i].LogicalAddress || got[i].Realm != want[i].Realm {
			t.Errorf("broker %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Endpoints[0].Address != "siteA/a:7000" {
		t.Errorf("endpoint lost in round trip: %+v", got[0].Endpoints)
	}

	// A corrupt cache reports its path and does not panic.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBrokerCache(path); err == nil {
		t.Error("corrupt cache: want error, got nil")
	}
}

// TestBrokerCacheAtomicReplace overwrites an existing cache and checks the
// crash-safety contract's observable half: the new content lands whole, no
// temp file survives, and the file is world-readable.
func TestBrokerCacheAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "targets.json")

	if err := saveBrokerCache(path, []core.BrokerInfo{{LogicalAddress: "old"}}); err != nil {
		t.Fatalf("first save: %v", err)
	}
	if err := saveBrokerCache(path, []core.BrokerInfo{{LogicalAddress: "new-a"}, {LogicalAddress: "new-b"}}); err != nil {
		t.Fatalf("overwrite: %v", err)
	}

	got, err := loadBrokerCache(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got) != 2 || got[0].LogicalAddress != "new-a" {
		t.Fatalf("replace lost data: %+v", got)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "targets.json" {
			t.Errorf("stray file left behind: %s", e.Name())
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Errorf("cache mode = %o, want 644", perm)
	}
}
