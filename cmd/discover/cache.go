package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"narada/internal/core"
)

// brokerCache is the on-disk shape of a persisted target set: the brokers a
// previous discovery shortlisted, reusable as the cached-target-set fallback
// when every BDN is unreachable on the next run.
type brokerCache struct {
	SavedAt time.Time         `json:"saved_at"`
	Brokers []core.BrokerInfo `json:"brokers"`
}

// loadBrokerCache reads a persisted target set. A missing file is a normal
// cold start, not an error.
func loadBrokerCache(path string) ([]core.BrokerInfo, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cache brokerCache
	if err := json.Unmarshal(data, &cache); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cache.Brokers, nil
}

// saveBrokerCache persists the target set crash-safely: write to a unique
// same-directory temp file, fsync it, rename over the destination, then
// fsync the directory so the rename itself survives a power cut. A crash at
// any point leaves either the old cache or the new one — never a truncated
// file — and concurrent discover runs cannot clobber each other's temp file.
func saveBrokerCache(path string, brokers []core.BrokerInfo) error {
	data, err := json.MarshalIndent(brokerCache{SavedAt: time.Now().UTC(), Brokers: brokers}, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return cleanup(err)
	}
	// Persist the rename: without the directory fsync the new entry can
	// still be lost, resurrecting the old cache after a crash.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if closeErr := d.Close(); syncErr == nil {
		syncErr = closeErr
	}
	return syncErr
}
