package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"narada/internal/core"
)

// brokerCache is the on-disk shape of a persisted target set: the brokers a
// previous discovery shortlisted, reusable as the cached-target-set fallback
// when every BDN is unreachable on the next run.
type brokerCache struct {
	SavedAt time.Time         `json:"saved_at"`
	Brokers []core.BrokerInfo `json:"brokers"`
}

// loadBrokerCache reads a persisted target set. A missing file is a normal
// cold start, not an error.
func loadBrokerCache(path string) ([]core.BrokerInfo, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cache brokerCache
	if err := json.Unmarshal(data, &cache); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cache.Brokers, nil
}

// saveBrokerCache persists the target set via a same-directory temp file and
// rename, so a crash mid-write never leaves a truncated cache behind.
func saveBrokerCache(path string, brokers []core.BrokerInfo) error {
	data, err := json.MarshalIndent(brokerCache{SavedAt: time.Now().UTC(), Brokers: brokers}, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
