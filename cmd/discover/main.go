// Command discover performs a broker discovery as a requesting node over
// real TCP/UDP sockets and prints the result: every response received, the
// shortlisted target set with scores, the ping measurements, the selected
// broker and the per-phase timing breakdown.
//
// Usage:
//
//	discover -bdn host:7000
//	discover -config node.json -verbose
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"narada/internal/config"
	"narada/internal/core"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/obs/profile"
	"narada/internal/transport"
)

func main() {
	var (
		configPath = flag.String("config", "", "node configuration file (JSON)")
		bind       = flag.String("bind", "", "IP to bind ('' = all interfaces)")
		bdns       = flag.String("bdn", "", "comma-separated BDN addresses")
		name       = flag.String("name", "", "requesting node name")
		realm      = flag.String("realm", "", "requester network realm")
		window     = flag.Duration("window", 4*time.Second, "response collection window")
		maxResp    = flag.Int("max-responses", 0, "first-N-responses cutoff (0 = window only)")
		targetSize = flag.Int("target-set", 10, "target set size |T|")
		pings      = flag.Int("pings", 3, "pings per target broker")
		multicast  = flag.Bool("multicast", false, "fall back to multicast when no BDN answers")
		verbose    = flag.Bool("verbose", false, "print every response and ping measurement")
		cacheFile  = flag.String("cache-file", "", "persist the discovered target set to this JSON file and seed the next run's cached-set fallback from it")
		telemetry  = flag.String("telemetry-addr", "", "listen addr for /metrics, /healthz, /debug/traces and pprof ('' = off)")
		obsExport  = flag.String("obs-export", "", "obscollect UDP addr to export spans + metric snapshots to ('' = off)")
		linger     = flag.Duration("linger", 0, "keep the process (and telemetry endpoints) up this long after the discovery")
		profEvery  = flag.Duration("profile-every", 0, "periodic cpu+heap+goroutine profile capture interval (0 = on-demand only; needs -telemetry-addr)")
		mutexFrac  = flag.Int("mutex-profile-fraction", 0, "record ~1/N mutex contention events (0 = off)")
		blockRate  = flag.Int("block-profile-rate", 0, "record goroutine blocking events >= N ns (0 = off)")
	)
	flag.Parse()

	var cfg core.Config
	if *configPath != "" {
		nodeCfg := &config.Node{}
		if err := config.Load(*configPath, nodeCfg); err != nil {
			log.Fatalf("discover: %v", err)
		}
		cfg = nodeCfg.DiscoveryConfig()
	}
	if *bdns != "" {
		cfg.BDNAddrs = nil
		for _, a := range strings.Split(*bdns, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.BDNAddrs = append(cfg.BDNAddrs, a)
			}
		}
	}
	if *name != "" {
		cfg.NodeName = *name
	}
	if cfg.NodeName == "" {
		host, _ := os.Hostname()
		cfg.NodeName = "discover@" + host
	}
	if *realm != "" {
		cfg.Realm = *realm
	}
	if cfg.CollectWindow == 0 {
		cfg.CollectWindow = *window
	}
	if cfg.MaxResponses == 0 {
		cfg.MaxResponses = *maxResp
	}
	if cfg.Selection.TargetSetSize == 0 {
		cfg.Selection.TargetSetSize = *targetSize
	}
	if cfg.PingCount == 0 {
		cfg.PingCount = *pings
	}
	if *multicast && cfg.MulticastGroup == "" {
		cfg.MulticastGroup = "narada/discovery"
	}
	if len(cfg.BDNAddrs) == 0 && cfg.MulticastGroup == "" {
		log.Fatal("discover: need -bdn, -multicast or a config file")
	}

	node := transport.NewRealNode(*bind, nil)
	ntp := ntptime.NewService(node.Clock(), 0, rand.New(rand.NewSource(time.Now().UnixNano())))
	ntp.InitImmediately() // host clock assumed NTP-disciplined

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	tracer := obs.NewTracer(obs.DefaultTraceCapacity, nil)
	cfg.Metrics = reg
	cfg.Tracer = tracer
	var exp *obs.Exporter
	if *obsExport != "" {
		journal := obs.NewJournal(0, nil)
		var err error
		exp, err = obs.NewExporter(obs.ExporterConfig{
			Addr:     *obsExport,
			Node:     cfg.NodeName,
			Offset:   ntp.Offset,
			Registry: reg,
			Journal:  journal,
		})
		if err != nil {
			log.Fatalf("discover: obs export: %v", err)
		}
		// The requester is short-lived: its node_start/node_stop pair bounds
		// the discovery on the collector's timeline, and Close ships the final
		// journal drain so node_stop arrives even without a metrics tick.
		journal.Emit(obs.EventNodeStart, cfg.NodeName, "discovery requester")
		defer exp.Close() //nolint:errcheck
		defer journal.Emit(obs.EventNodeStop, cfg.NodeName, "")
		tracer.SetExporter(exp)
	}
	if *telemetry != "" {
		profile.SetRuntimeRates(*mutexFrac, *blockRate)
		prof := profile.New(profile.Config{
			Interval: *profEvery,
			Mutex:    *mutexFrac > 0,
			Block:    *blockRate > 0,
		})
		prof.Start()
		defer prof.Close()
		srv, err := obs.ServeWith(*telemetry, reg, tracer, prof.Mount())
		if err != nil {
			log.Fatalf("discover: telemetry: %v", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		log.Printf("discover: telemetry on http://%s/metrics", srv.Addr())
		if exp != nil {
			exp.AnnounceTelemetry(srv.Addr(), true)
		}
	}

	d := core.NewDiscoverer(node, ntp, cfg)
	if *cacheFile != "" {
		if brokers, err := loadBrokerCache(*cacheFile); err != nil {
			log.Printf("discover: ignoring broker cache: %v", err)
		} else if len(brokers) > 0 {
			d.SeedTargetSet(brokers)
			log.Printf("discover: seeded %d cached brokers from %s", len(brokers), *cacheFile)
		}
	}
	res, err := d.Discover()
	if err != nil {
		log.Fatalf("discover: %v", err)
	}
	if *cacheFile != "" {
		if err := saveBrokerCache(*cacheFile, d.LastTargetSet()); err != nil {
			log.Printf("discover: saving broker cache: %v", err)
		}
	}

	fmt.Printf("discovered via %s", res.Via)
	if res.BDN != "" {
		fmt.Printf(" (%s)", res.BDN)
	}
	fmt.Printf(", %d responses, %d in target set\n", len(res.Responses), len(res.TargetSet))

	if *verbose {
		fmt.Println("\nresponses:")
		for _, c := range res.Responses {
			fmt.Printf("  %-24s est-latency=%-12v links=%-3d cpu=%.2f\n",
				c.Response.Broker.LogicalAddress, c.EstLatency,
				c.Response.Usage.Links, c.Response.Usage.CPULoad)
		}
		fmt.Println("\ntarget set (by score):")
		for _, c := range res.TargetSet {
			fmt.Printf("  %-24s score=%-10.3f ping-rtt=%-12v pongs=%d\n",
				c.Response.Broker.LogicalAddress, c.Score, c.PingRTT, c.PingCount)
		}
	}

	fmt.Printf("\nselected broker: %s\n", res.Selected.LogicalAddress)
	for _, ep := range res.Selected.Endpoints {
		fmt.Printf("  %-4s %s\n", ep.Protocol, ep.Address)
	}
	if res.PingDecided {
		fmt.Printf("  measured RTT %v\n", res.SelectedRTT)
	} else {
		fmt.Println("  (no pongs received; selected by weight)")
	}
	fmt.Printf("\ntiming:\n%s\n", res.Timing.String())

	if *linger > 0 {
		log.Printf("discover: lingering %v (trace at /debug/traces)", *linger)
		time.Sleep(*linger)
	}
}
