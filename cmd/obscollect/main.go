// Command obscollect runs the fabric-wide observability collector: a UDP
// sink for the span batches and metric snapshots every broker, BDN and
// requester exports, serving the assembled view over HTTP —
//
//	/metrics       federated Prometheus exposition (node label per source)
//	/traces        retained cross-node trace summaries
//	/traces/{id}   one assembled trace, spans in NTP-aligned causal order
//	/fabric        per-node liveness, clock offset, load and latency SLIs
//
// With -probe-interval it also runs the synthetic prober: periodic
// end-to-end discoveries against the live fabric whose traces and
// success-rate/latency SLIs land in this collector.
//
// Usage:
//
//	obscollect -listen 127.0.0.1:9310 -http 127.0.0.1:9311
//	obscollect -listen :9310 -http :9311 -probe-interval 10s -probe-bdn 127.0.0.1:7000
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"narada/internal/obs"
	"narada/internal/obs/collect"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:9310", "UDP listen addr for export packets")
		httpAddr      = flag.String("http", "127.0.0.1:9311", "HTTP listen addr for /metrics, /traces, /fabric")
		traceCap      = flag.Int("trace-capacity", collect.DefaultTraceCapacity, "assembled traces retained (oldest evicted)")
		probeInterval = flag.Duration("probe-interval", 0, "synthetic discovery probe interval (0 = no prober)")
		probeBDN      = flag.String("probe-bdn", "", "comma-separated BDN stream addrs the prober discovers through")
		probeWindow   = flag.Duration("probe-window", time.Second, "per-probe response collection window")
		logLevel      = flag.String("log-level", "info", "log level: debug | info | warn | error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("obscollect: %v", err)
	}
	logger := obs.NewLogger(os.Stderr, level)

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)

	col, err := collect.New(collect.Config{
		Listen:        *listen,
		TraceCapacity: *traceCap,
		Logger:        logger,
		Registry:      reg,
	})
	if err != nil {
		log.Fatalf("obscollect: %v", err)
	}
	defer col.Close()
	log.Printf("obscollect: receiving export packets on udp://%s", col.Addr())

	lis, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("obscollect: http listen: %v", err)
	}
	srv := &http.Server{Handler: col.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	log.Printf("obscollect: serving http://%s/metrics /traces /fabric", lis.Addr())

	var prober *collect.Prober
	if *probeInterval > 0 {
		addrs := splitNonEmpty(*probeBDN)
		if len(addrs) == 0 {
			log.Fatal("obscollect: -probe-interval requires -probe-bdn")
		}
		prober, err = collect.NewProber(collect.ProbeConfig{
			Interval:      *probeInterval,
			BDNAddrs:      addrs,
			CollectWindow: *probeWindow,
			Export:        col.Addr(),
			Registry:      col.Registry(),
			Logger:        logger,
		})
		if err != nil {
			log.Fatalf("obscollect: prober: %v", err)
		}
		prober.Run()
		log.Printf("obscollect: probing %s every %s", strings.Join(addrs, ","), *probeInterval)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("obscollect: shutting down")
	if prober != nil {
		_ = prober.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	<-done
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
