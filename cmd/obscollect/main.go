// Command obscollect runs the fabric-wide observability collector: a UDP
// sink for the span batches and metric snapshots every broker, BDN and
// requester exports, serving the assembled view over HTTP —
//
//	/metrics       federated Prometheus exposition (node label per source)
//	/traces        retained cross-node trace summaries
//	/traces/{id}   one assembled trace, spans in NTP-aligned causal order;
//	               message traces carry per-hop queue-wait breakdowns
//	/flows         per-topic flow accounting (top-k per node + fabric merge)
//	/fabric        per-node liveness, clock offset, load and latency SLIs
//	/alerts        health-alert list (deadman, clock drift, egress, SLO burn,
//	               delivery-latency burn, drop ratio), each linked to its
//	               surrounding control-plane event window
//	/events        merged control-plane event journal (link churn, ad
//	               lifecycle, alerts, faults), filterable by node/type/since
//	/topology      fabric graph reconstructed from the journal; ?at=<time>
//	               replays the topology as of any past instant
//	/query         range queries over the retained multi-resolution series
//	/profiles      pulled + flight-recorded pprof captures, downloadable by
//	               id; /profiles/diff renders a text-mode site diff
//
// Every ingested snapshot also feeds the in-memory time-series store and the
// health engine, which evaluates deadman / clock-drift / egress / SLO
// burn-rate rules each -health-interval and publishes alert transitions to
// the log and, with -alert-webhook, to a JSON webhook.
//
// With -probe-interval it also runs the synthetic prober: periodic
// end-to-end discoveries against the live fabric whose traces and
// success-rate/latency SLIs land in this collector.
//
// Usage:
//
//	obscollect -listen 127.0.0.1:9310 -http 127.0.0.1:9311
//	obscollect -listen :9310 -http :9311 -probe-interval 10s -probe-bdn 127.0.0.1:7000
//	obscollect -listen :9310 -http :9311 -deadman-intervals 3 -alert-webhook http://ops/hook
//
// On SIGINT/SIGTERM the prober stops first, then the collector (flushing
// still-firing alerts to the sinks), then the HTTP server drains.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"narada/internal/obs"
	"narada/internal/obs/collect"
	"narada/internal/obs/collect/health"
	"narada/internal/obs/profile"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:9310", "UDP listen addr for export packets")
		httpAddr      = flag.String("http", "127.0.0.1:9311", "HTTP listen addr for /metrics, /traces, /fabric, /alerts, /events, /topology, /query")
		traceCap      = flag.Int("trace-capacity", collect.DefaultTraceCapacity, "assembled traces retained (oldest evicted)")
		eventCap      = flag.Int("event-capacity", collect.DefaultEventCapacity, "control-plane events retained per node (oldest evicted)")
		probeInterval = flag.Duration("probe-interval", 0, "synthetic discovery probe interval (0 = no prober)")
		probeBDN      = flag.String("probe-bdn", "", "comma-separated BDN stream addrs the prober discovers through")
		probeWindow   = flag.Duration("probe-window", time.Second, "per-probe response collection window")
		logLevel      = flag.String("log-level", "info", "log level: debug | info | warn | error")

		healthInterval = flag.Duration("health-interval", time.Second, "health rule evaluation period")
		exportInterval = flag.Duration("export-interval", time.Second, "fabric metric export period (deadman unit of silence)")
		deadmanAfter   = flag.Int("deadman-intervals", 3, "export intervals of silence before a node is declared vanished")
		clockEnvelope  = flag.Duration("clock-envelope", 20*time.Millisecond, "acceptable NTP clock-offset envelope (±)")
		sloTarget      = flag.Float64("slo-target", 0.99, "probe success-rate SLO for burn-rate alerting")
		latencySLO     = flag.Duration("latency-slo", time.Second, "probe latency SLO (slower probes burn latency budget)")
		deliveryTarget = flag.Float64("delivery-slo-target", 0.99, "delivery-latency SLO target for burn-rate alerting")
		deliverySLO    = flag.Duration("delivery-latency-slo", 100*time.Millisecond, "end-to-end delivery latency SLO (slower deliveries burn budget)")
		dropRatioMax   = flag.Float64("drop-ratio-max", 0.01, "egress drops / delivery attempts ratio that fires drop_ratio")
		dropMinVolume  = flag.Float64("drop-min-volume", 100, "delivery attempts per window before drop_ratio may fire")
		pendingFor     = flag.Duration("alert-pending-for", 0, "how long a violation must persist before firing")
		webhook        = flag.String("alert-webhook", "", "URL POSTed one JSON document per alert transition (optional)")

		profileDir   = flag.String("profile-dir", "", "spool pulled and flight-recorded profiles to this directory ('' = in-memory only)")
		profilePull  = flag.Duration("profile-pull", 15*time.Second, "how often to drain announced node capturer rings (0 = flight recorder only)")
		profileCount = flag.Int("profile-max-count", collect.DefaultProfileMaxCount, "profiles retained before oldest eviction")
		profileBytes = flag.Int64("profile-max-bytes", collect.DefaultProfileMaxBytes, "total profile bytes retained before oldest eviction")
		flightCPU    = flag.Int("flight-cpu-seconds", collect.DefaultFlightCPUSeconds, "CPU sampling window of an alert-triggered flight capture")
		noFlight     = flag.Bool("no-flight-recorder", false, "disable alert-triggered profile capture")
		mutexFrac    = flag.Int("mutex-profile-fraction", 0, "record ~1/N mutex contention events in this process (0 = off)")
		blockRate    = flag.Int("block-profile-rate", 0, "record goroutine blocking events >= N ns in this process (0 = off)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("obscollect: %v", err)
	}
	logger := obs.NewLogger(os.Stderr, level)
	profile.SetRuntimeRates(*mutexFrac, *blockRate)

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)

	hc := &health.Config{
		ExportInterval:     *exportInterval,
		DeadmanIntervals:   *deadmanAfter,
		ClockEnvelope:      *clockEnvelope,
		SLOTarget:          *sloTarget,
		LatencySLO:         *latencySLO,
		DeliverySLOTarget:  *deliveryTarget,
		DeliveryLatencySLO: *deliverySLO,
		DropRatioMax:       *dropRatioMax,
		DropMinVolume:      *dropMinVolume,
		PendingFor:         *pendingFor,
	}
	hc.Sinks = append(hc.Sinks, health.NewLogSink(logger))
	if *webhook != "" {
		hc.Sinks = append(hc.Sinks, health.NewWebhookSink(*webhook, 0, logger))
	}

	col, err := collect.New(collect.Config{
		Listen:                *listen,
		TraceCapacity:         *traceCap,
		EventCapacity:         *eventCap,
		Logger:                logger,
		Registry:              reg,
		Health:                hc,
		HealthInterval:        *healthInterval,
		ProfileDir:            *profileDir,
		ProfilePullInterval:   *profilePull,
		ProfileMaxCount:       *profileCount,
		ProfileMaxBytes:       *profileBytes,
		FlightCPUSeconds:      *flightCPU,
		DisableFlightRecorder: *noFlight,
	})
	if err != nil {
		log.Fatalf("obscollect: %v", err)
	}
	log.Printf("obscollect: receiving export packets on udp://%s", col.Addr())

	lis, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("obscollect: http listen: %v", err)
	}
	srv := &http.Server{Handler: col.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	log.Printf("obscollect: serving http://%s/metrics /traces /flows /fabric /alerts /events /topology /query /profiles", lis.Addr())

	var prober *collect.Prober
	if *probeInterval > 0 {
		addrs := splitNonEmpty(*probeBDN)
		if len(addrs) == 0 {
			log.Fatal("obscollect: -probe-interval requires -probe-bdn")
		}
		// No Registry: the prober keeps a private one and ships SLI snapshots
		// through the export plane like any other node, so probe series land
		// in the retention store — /query and the SLO burn-rate rules read
		// them from there. (A collector-shared registry would sit only on the
		// federated /metrics, invisible to retention and alerting.)
		prober, err = collect.NewProber(collect.ProbeConfig{
			Interval:      *probeInterval,
			BDNAddrs:      addrs,
			CollectWindow: *probeWindow,
			Export:        col.Addr(),
			Logger:        logger,
		})
		if err != nil {
			log.Fatalf("obscollect: prober: %v", err)
		}
		prober.Run()
		log.Printf("obscollect: probing %s every %s", strings.Join(addrs, ","), *probeInterval)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("obscollect: shutting down")
	// Shutdown order matters: the prober stops exporting first, then the
	// collector stops ingesting and evaluating (flushing still-firing alerts
	// to the sinks), and only then does the HTTP plane drain — so a final
	// scrape of /alerts during shutdown still sees the flushed state.
	if prober != nil {
		_ = prober.Close()
	}
	_ = col.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	<-done
	log.Print("obscollect: drained")
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
