// Command nbexp regenerates the paper's evaluation: every table and figure
// (Table 1, Figures 2-14) plus the ablation studies, on the simulated
// five-site WAN.
//
// Usage:
//
//	nbexp -list
//	nbexp -exp fig2
//	nbexp -exp all -runs 120 -keep 100 -scale 200 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"narada/internal/experiments"
	"narada/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (see -list) or 'all' / 'figures' / 'ablations'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		runs      = flag.Int("runs", 120, "discovery repetitions per experiment (paper: 120)")
		keep      = flag.Int("keep", 100, "samples kept after outlier removal (paper: 100)")
		scale     = flag.Float64("scale", 200, "simulator model-time speed-up")
		seed      = flag.Int64("seed", 1, "random seed")
		telemetry = flag.String("telemetry-addr", "", "listen addr for /metrics, /healthz and pprof while experiments run ('' = off)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *telemetry != "" {
		reg := obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		srv, err := obs.Serve(*telemetry, reg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbexp: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		fmt.Fprintf(os.Stderr, "nbexp: telemetry on http://%s/metrics\n", srv.Addr())
	}

	opts := experiments.Options{Runs: *runs, Keep: *keep, Scale: *scale, Seed: *seed}
	var ids []string
	switch *exp {
	case "all":
		ids = experiments.IDs()
	case "figures":
		for _, id := range experiments.IDs() {
			if !strings.HasPrefix(id, "abl-") {
				ids = append(ids, id)
			}
		}
	case "ablations":
		for _, id := range experiments.IDs() {
			if strings.HasPrefix(id, "abl-") {
				ids = append(ids, id)
			}
		}
	default:
		ids = strings.Split(*exp, ",")
	}

	failed := 0
	for _, id := range ids {
		if err := experiments.Run(strings.TrimSpace(id), opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "nbexp: %v\n", err)
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
