// Command broker runs a NaradaBrokering-style publish/subscribe broker over
// real TCP/UDP sockets. It advertises itself to the BDNs listed in its
// configuration file, links to configured peer brokers, and answers broker
// discovery requests according to its response policy.
//
// Usage:
//
//	broker -config broker.json [-bind 127.0.0.1]
//	broker -logical my-broker -stream-port 10001 -udp-port 10002 \
//	       -bdn host:7000 -link host:10001
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"narada/internal/broker"
	"narada/internal/config"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/obs/profile"
	"narada/internal/transport"
)

func main() {
	var (
		configPath = flag.String("config", "", "broker configuration file (JSON)")
		bind       = flag.String("bind", "", "IP to bind ('' = all interfaces)")
		logical    = flag.String("logical", "", "logical address (overrides config)")
		streamPort = flag.Int("stream-port", 0, "TCP port (0 = auto)")
		udpPort    = flag.Int("udp-port", 0, "UDP port (0 = auto)")
		realm      = flag.String("realm", "", "network realm")
		bdns       = flag.String("bdn", "", "comma-separated BDN addresses to register with")
		links      = flag.String("link", "", "comma-separated peer broker addresses to link to")
		multicast  = flag.Bool("multicast", false, "join the discovery multicast group")
		superviseF = flag.Bool("supervise", false, "self-heal links and BDN registrations with backoff redial")
		heartbeat  = flag.Duration("heartbeat", 0, "link keepalive interval (overrides config; 0 = off)")
		advEvery   = flag.Duration("advertise-every", 0, "registration refresh period (overrides config; 0 = off)")
		advTTL     = flag.Duration("ad-ttl", 0, "advertised validity window (overrides config; 0 = 3x refresh period)")
		telemetry  = flag.String("telemetry-addr", "", "listen addr for /metrics, /healthz, /debug/traces and pprof (overrides config; '' = off)")
		obsExport  = flag.String("obs-export", "", "obscollect UDP addr to export spans + metric snapshots to (overrides config; '' = off)")
		sampleN    = flag.Int("sample-every", 0, "trace ~1 in N publishes originating here (overrides config; 0 = off)")
		samplePS   = flag.Int("sample-topic-persec", 0, "per-topic cap on traced messages/second (overrides config; 0 = uncapped)")
		profEvery  = flag.Duration("profile-every", 0, "periodic cpu+heap+goroutine profile capture interval (0 = on-demand only; needs -telemetry-addr)")
		mutexFrac  = flag.Int("mutex-profile-fraction", 0, "record ~1/N mutex contention events (0 = off)")
		blockRate  = flag.Int("block-profile-rate", 0, "record goroutine blocking events >= N ns (0 = off)")
		logLevel   = flag.String("log-level", "", "log level: debug | info | warn | error (overrides config)")
	)
	flag.Parse()

	cfg := &config.Broker{}
	if *configPath != "" {
		if err := config.Load(*configPath, cfg); err != nil {
			log.Fatalf("broker: %v", err)
		}
	}
	if *logical != "" {
		cfg.LogicalAddress = *logical
	}
	if cfg.LogicalAddress == "" {
		cfg.LogicalAddress = fmt.Sprintf("broker-%d", os.Getpid())
	}
	if *streamPort != 0 {
		cfg.StreamPort = *streamPort
	}
	if *udpPort != 0 {
		cfg.UDPPort = *udpPort
	}
	if *realm != "" {
		cfg.Realm = *realm
	}
	if *bdns != "" {
		cfg.BDNs = splitList(*bdns)
	}
	if *links != "" {
		cfg.Links = splitList(*links)
	}
	if *multicast && cfg.MulticastGroup == "" {
		cfg.MulticastGroup = "narada/discovery"
	}
	if *superviseF {
		cfg.Supervise = true
	}
	if *heartbeat > 0 {
		cfg.HeartbeatMs = int(heartbeat.Milliseconds())
	}
	if *advEvery > 0 {
		cfg.AdvertiseIntervalMs = int(advEvery.Milliseconds())
	}
	if *advTTL > 0 {
		cfg.AdvertiseTTLMs = int(advTTL.Milliseconds())
	}
	if *telemetry != "" {
		cfg.TelemetryAddr = *telemetry
	}
	if *obsExport != "" {
		cfg.ObsExportAddr = *obsExport
	}
	if *sampleN > 0 {
		cfg.SampleEvery = *sampleN
	}
	if *samplePS > 0 {
		cfg.SampleTopicPerSec = *samplePS
	}
	if *logLevel != "" {
		cfg.LogLevel = *logLevel
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("broker: %v", err)
	}
	level, err := obs.ParseLevel(cfg.LogLevel)
	if err != nil {
		log.Fatalf("broker: %v", err)
	}
	logger := obs.NewLogger(os.Stderr, level)
	profile.SetRuntimeRates(*mutexFrac, *blockRate)

	node := transport.NewRealNode(*bind, nil)
	hostname, _ := os.Hostname()
	if cfg.Hostname == "" {
		cfg.Hostname = hostname
	}
	// Real deployment: the system clock is assumed NTP-disciplined by the
	// host; the service models the residual synchronisation error.
	ntp := ntptime.NewService(node.Clock(), 0, rand.New(rand.NewSource(time.Now().UnixNano())))
	go ntp.Init()

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	tracer := obs.NewTracer(obs.DefaultTraceCapacity, logger)
	// The exporter is wired before the broker exists, so its per-tick flow
	// snapshot reads through an atomic indirection filled in below.
	var flowSource atomic.Pointer[func() []obs.FlowSnapshot]
	var exp *obs.Exporter
	journal := obs.NewJournal(0, nil)
	if cfg.ObsExportAddr != "" {
		exp, err = obs.NewExporter(obs.ExporterConfig{
			Addr:     cfg.ObsExportAddr,
			Node:     cfg.LogicalAddress,
			Offset:   ntp.Offset,
			Registry: reg,
			Journal:  journal,
			Flows: func() []obs.FlowSnapshot {
				if f := flowSource.Load(); f != nil {
					return (*f)()
				}
				return nil
			},
		})
		if err != nil {
			log.Fatalf("broker: obs export: %v", err)
		}
		tracer.SetExporter(exp)
		log.Printf("broker: exporting observability to udp://%s", cfg.ObsExportAddr)
	}

	b, err := broker.New(node, ntp, broker.Config{
		Logger:            logger,
		LogicalAddress:    cfg.LogicalAddress,
		Hostname:          cfg.Hostname,
		Realm:             cfg.Realm,
		Geo:               cfg.Geo,
		Institution:       cfg.Institution,
		StreamPort:        cfg.StreamPort,
		UDPPort:           cfg.UDPPort,
		DedupCapacity:     cfg.DedupCapacity,
		Policy:            cfg.Policy(),
		MulticastGroup:    cfg.MulticastGroup,
		Supervise:         cfg.SupervisePolicy(),
		HeartbeatInterval: cfg.HeartbeatInterval(),
		AdvertiseInterval: cfg.AdvertiseInterval(),
		AdvertiseTTL:      cfg.AdvertiseTTL(),
		Metrics:           reg,
		Tracer:            tracer,
		Journal:           journal,
		PublishSampler:    obs.NewSampler(uint64(cfg.SampleEvery), uint64(cfg.SampleTopicPerSec)),
	})
	if err != nil {
		log.Fatalf("broker: %v", err)
	}
	flows := b.Flows
	flowSource.Store(&flows)
	if err := b.Start(); err != nil {
		log.Fatalf("broker: %v", err)
	}
	if cfg.SampleEvery > 0 {
		log.Printf("broker: sampling ~1/%d publishes for message tracing", cfg.SampleEvery)
	}
	log.Printf("broker %s listening: stream=%s udp=%s",
		b.LogicalAddress(), b.StreamAddr(), b.UDPAddr())

	var srv *obs.Server
	var prof *profile.Capturer
	if cfg.TelemetryAddr != "" {
		prof = profile.New(profile.Config{
			Interval: *profEvery,
			Mutex:    *mutexFrac > 0,
			Block:    *blockRate > 0,
			Logger:   logger,
		})
		prof.Start()
		srv, err = obs.ServeWith(cfg.TelemetryAddr, reg, tracer, prof.Mount())
		if err != nil {
			log.Fatalf("broker: telemetry: %v", err)
		}
		log.Printf("broker: telemetry on http://%s/metrics", srv.Addr())
		if *profEvery > 0 {
			log.Printf("broker: capturing profiles every %s", *profEvery)
		}
		// Announce the telemetry endpoint on the export stream so the
		// collector can pull profiles and flight-record this node.
		if exp != nil {
			exp.AnnounceTelemetry(srv.Addr(), true)
		}
	}

	for _, addr := range cfg.BDNs {
		if err := b.RegisterWithBDN(addr); err != nil {
			log.Printf("broker: registering with BDN %s: %v", addr, err)
		} else {
			log.Printf("broker: registered with BDN %s", addr)
		}
	}
	for _, addr := range cfg.Links {
		if err := b.LinkTo(addr); err != nil {
			log.Printf("broker: linking to %s: %v", addr, err)
		} else {
			log.Printf("broker: linked to %s", addr)
		}
	}

	// Ordered shutdown on SIGINT/SIGTERM: stop producing (broker) first,
	// then stop serving telemetry, and close the exporter last — its Close
	// drains buffered spans and ships a final metric + flow snapshot, so the
	// collector keeps the process's last moments instead of losing them with
	// the socket.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("broker: %s: shutting down", s)
	b.Close()
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
	if prof != nil {
		prof.Close()
	}
	if exp != nil {
		_ = exp.Close()
		log.Print("broker: final telemetry snapshot exported")
	}
	log.Print("broker: shutdown complete")
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
