// Command bdn runs a Broker Discovery Node over real TCP/UDP sockets: it
// accepts broker advertisements, acknowledges discovery requests and injects
// them into the broker network.
//
// Usage:
//
//	bdn -config bdn.json [-bind 127.0.0.1]
//	bdn -name gridservicelocator.org -stream-port 7000
package main

import (
	"context"
	"flag"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"narada/internal/bdn"
	"narada/internal/bdn/replica"
	"narada/internal/config"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/obs/profile"
	"narada/internal/transport"
)

func main() {
	var (
		configPath = flag.String("config", "", "BDN configuration file (JSON)")
		bind       = flag.String("bind", "", "IP to bind ('' = all interfaces)")
		name       = flag.String("name", "", "BDN name (overrides config)")
		streamPort = flag.Int("stream-port", 0, "TCP port (0 = auto)")
		udpPort    = flag.Int("udp-port", 0, "UDP port (0 = auto)")
		policy     = flag.String("policy", "", "injection policy: all | closest-farthest")
		measure    = flag.Duration("measure-every", time.Minute, "broker distance measurement interval (0 = never)")
		adTTL      = flag.Duration("ad-ttl", 0, "registration validity for advertisements without their own TTL (overrides config; 0 = forever)")
		sweepEvery = flag.Duration("sweep-every", 0, "expired-registration sweep period (overrides config; 0 = 1s)")
		dataDir    = flag.String("data-dir", "", "durable registry directory: WAL + snapshots; registrations survive restarts (overrides config; '' = in-memory only)")
		fsync      = flag.String("fsync", "", "WAL durability policy: always | interval | never (overrides config)")
		snapEvery  = flag.Int("snapshot-every", 0, "WAL records between registry snapshots (overrides config; 0 = 1024)")
		replPort   = flag.Int("replica-port", 0, "TCP port for the replication endpoint (0 = auto; needs -data-dir and -peers)")
		peers      = flag.String("peers", "", "comma-separated replication addresses of the other cluster members (overrides config)")
		lease      = flag.Duration("lease", 0, "replication leader lease; standbys promote after it expires (overrides config; 0 = 2s)")
		telemetry  = flag.String("telemetry-addr", "", "listen addr for /metrics, /healthz, /debug/traces and pprof (overrides config; '' = off)")
		obsExport  = flag.String("obs-export", "", "obscollect UDP addr to export spans + metric snapshots to (overrides config; '' = off)")
		profEvery  = flag.Duration("profile-every", 0, "periodic cpu+heap+goroutine profile capture interval (0 = on-demand only; needs -telemetry-addr)")
		mutexFrac  = flag.Int("mutex-profile-fraction", 0, "record ~1/N mutex contention events (0 = off)")
		blockRate  = flag.Int("block-profile-rate", 0, "record goroutine blocking events >= N ns (0 = off)")
		logLevel   = flag.String("log-level", "", "log level: debug | info | warn | error (overrides config)")
	)
	flag.Parse()

	cfg := &config.BDN{}
	if *configPath != "" {
		if err := config.Load(*configPath, cfg); err != nil {
			log.Fatalf("bdn: %v", err)
		}
	}
	if *name != "" {
		cfg.Name = *name
	}
	if cfg.Name == "" {
		cfg.Name = "gridservicelocator.org"
	}
	if *streamPort != 0 {
		cfg.StreamPort = *streamPort
	}
	if *udpPort != 0 {
		cfg.UDPPort = *udpPort
	}
	if *policy != "" {
		cfg.Policy = *policy
	}
	if *adTTL > 0 {
		cfg.AdTTLMs = int(adTTL.Milliseconds())
	}
	if *sweepEvery > 0 {
		cfg.SweepIntervalMs = int(sweepEvery.Milliseconds())
	}
	if *dataDir != "" {
		cfg.DataDir = *dataDir
	}
	if *fsync != "" {
		cfg.Fsync = *fsync
	}
	if *snapEvery > 0 {
		cfg.SnapshotEvery = *snapEvery
	}
	if *replPort != 0 {
		cfg.ReplicaPort = *replPort
	}
	if *peers != "" {
		cfg.Peers = nil
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if *lease > 0 {
		cfg.LeaseMs = int(lease.Milliseconds())
	}
	if *telemetry != "" {
		cfg.TelemetryAddr = *telemetry
	}
	if *obsExport != "" {
		cfg.ObsExportAddr = *obsExport
	}
	if *logLevel != "" {
		cfg.LogLevel = *logLevel
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("bdn: %v", err)
	}
	level, err := obs.ParseLevel(cfg.LogLevel)
	if err != nil {
		log.Fatalf("bdn: %v", err)
	}
	logger := obs.NewLogger(os.Stderr, level)
	profile.SetRuntimeRates(*mutexFrac, *blockRate)

	injection := bdn.InjectClosestFarthest
	if cfg.Policy == "all" {
		injection = bdn.InjectAll
	}

	node := transport.NewRealNode(*bind, nil)
	ntp := ntptime.NewService(node.Clock(), 0, rand.New(rand.NewSource(time.Now().UnixNano())))
	go ntp.Init()

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	tracer := obs.NewTracer(obs.DefaultTraceCapacity, logger)
	journal := obs.NewJournal(0, nil)
	var exp *obs.Exporter
	if cfg.ObsExportAddr != "" {
		exp, err = obs.NewExporter(obs.ExporterConfig{
			Addr:     cfg.ObsExportAddr,
			Node:     cfg.Name,
			Offset:   ntp.Offset,
			Registry: reg,
			Journal:  journal,
		})
		if err != nil {
			log.Fatalf("bdn: obs export: %v", err)
		}
		tracer.SetExporter(exp)
		log.Printf("bdn: exporting observability to udp://%s", cfg.ObsExportAddr)
	}

	d, err := bdn.New(node, ntp, bdn.Config{
		Logger:             logger,
		Name:               cfg.Name,
		StreamPort:         cfg.StreamPort,
		UDPPort:            cfg.UDPPort,
		Policy:             injection,
		InjectOverhead:     cfg.InjectOverhead(),
		AdTTL:              cfg.AdTTL(),
		SweepInterval:      cfg.SweepInterval(),
		Private:            cfg.Private,
		RequiredCredential: []byte(cfg.RequiredCredential),
		DataDir:            cfg.DataDir,
		Fsync:              cfg.SyncPolicy(),
		SnapshotEvery:      cfg.SnapshotEvery,
		Metrics:            reg,
		Tracer:             tracer,
		Journal:            journal,
	})
	if err != nil {
		log.Fatalf("bdn: %v", err)
	}
	if err := d.Start(); err != nil {
		log.Fatalf("bdn: %v", err)
	}
	log.Printf("bdn %s listening on %s", d.Name(), d.Addr())
	if cfg.DataDir != "" {
		log.Printf("bdn: durable registry in %s (fsync=%s)", cfg.DataDir, cfg.SyncPolicy())
	}

	var rep *replica.Replica
	if len(cfg.Peers) > 0 {
		rep, err = replica.New(replica.Config{
			Name:       cfg.Name,
			Node:       node,
			Store:      d,
			ListenPort: cfg.ReplicaPort,
			Peers:      cfg.Peers,
			Lease:      cfg.Lease(),
			Logger:     logger,
			Metrics:    reg,
			Journal:    journal,
		})
		if err != nil {
			log.Fatalf("bdn: replica: %v", err)
		}
		if err := rep.Start(nil); err != nil {
			log.Fatalf("bdn: replica: %v", err)
		}
		log.Printf("bdn: replicating on %s with %d peers", rep.Addr(), len(cfg.Peers))
	}

	var srv *obs.Server
	var prof *profile.Capturer
	if cfg.TelemetryAddr != "" {
		prof = profile.New(profile.Config{
			Interval: *profEvery,
			Mutex:    *mutexFrac > 0,
			Block:    *blockRate > 0,
			Logger:   logger,
		})
		prof.Start()
		srv, err = obs.ServeWith(cfg.TelemetryAddr, reg, tracer, prof.Mount())
		if err != nil {
			log.Fatalf("bdn: telemetry: %v", err)
		}
		log.Printf("bdn: telemetry on http://%s/metrics", srv.Addr())
		if *profEvery > 0 {
			log.Printf("bdn: capturing profiles every %s", *profEvery)
		}
		if exp != nil {
			exp.AnnounceTelemetry(srv.Addr(), true)
		}
	}

	stop := make(chan struct{})
	if *measure > 0 {
		go func() {
			ticker := time.NewTicker(*measure)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					dists := d.MeasureDistances()
					log.Printf("bdn: measured %d broker distances", len(dists))
				case <-stop:
					return
				}
			}
		}()
	}

	// Ordered shutdown on SIGINT/SIGTERM: stop the daemon first, then the
	// telemetry server, and close the exporter last so its final drained
	// spans and metric snapshot reach the collector before the socket dies.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	close(stop)
	log.Printf("bdn: %s: shutting down", s)
	if rep != nil {
		rep.Close()
	}
	d.Close()
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
	if prof != nil {
		prof.Close()
	}
	if exp != nil {
		_ = exp.Close()
		log.Print("bdn: final telemetry snapshot exported")
	}
	log.Print("bdn: shutdown complete")
}
