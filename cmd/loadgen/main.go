// Command loadgen drives an open-loop publish load against a running broker
// and reports delivery-latency percentiles per offered rate.
//
// Open loop means the send schedule is fixed before the run: event i leaves
// at start + i/rate whether or not the broker has kept up, and its latency is
// measured against that scheduled departure, not the actual send. A closed
// loop (send, wait, send) silently stretches its own schedule when the system
// slows down and so under-reports exactly the latencies a saturated broker
// inflicts — the coordinated-omission trap. Here backlog shows up where it
// belongs: in the tail percentiles.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:10001 -rates 2000,8000,20000 -duration 5s
//	loadgen -addr 127.0.0.1:10001 -rates 5000 -subs 4 -payload 512 -out run.json
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"narada/internal/event"
	"narada/internal/stats"
	"narada/internal/transport"
)

// stageWarmup marks warmup traffic; subscribers discard it.
const stageWarmup = 0xFFFF

// payloadHeader is the measurement preamble inside each publish payload:
// 8 bytes of scheduled-departure unix nanos + 2 bytes of stage index.
const payloadHeader = 10

// Report is the JSON document loadgen emits; bench_gate.sh and
// BENCH_fanout.json embed it verbatim.
type Report struct {
	Benchmark   string        `json:"benchmark"`
	Addr        string        `json:"addr"`
	Topic       string        `json:"topic"`
	PayloadSize int           `json:"payload_bytes"`
	Subscribers int           `json:"subscribers"`
	DurationSec float64       `json:"duration_sec_per_stage"`
	Stages      []StageResult `json:"stages"`
}

// StageResult summarises one offered-rate stage.
type StageResult struct {
	OfferedRate  float64 `json:"offered_rate_eps"`
	AchievedRate float64 `json:"achieved_rate_eps"`
	DeliveredEps float64 `json:"delivered_eps"`
	Sent         uint64  `json:"sent"`
	Delivered    uint64  `json:"delivered"`
	Lost         int64   `json:"lost"`
	P50us        float64 `json:"p50_us"`
	P99us        float64 `json:"p99_us"`
	P999us       float64 `json:"p999_us"`
	MaxUs        float64 `json:"max_us"`
	MeanUs       float64 `json:"mean_us"`
}

// subscriber owns one broker connection and per-stage latency recorders.
// The recv goroutine is the only writer; mu covers the histograms so the
// reporter can merge them even if a straggler delivery lands mid-summary.
type subscriber struct {
	conn      transport.Conn
	mu        sync.Mutex
	hists     []*stats.HDR    // one per stage, guarded by mu
	delivered []atomic.Uint64 // one per stage, read by the pacing loop
	done      chan struct{}
}

func main() {
	var (
		addr     = flag.String("addr", "", "broker stream address (required)")
		rates    = flag.String("rates", "1000,5000,10000", "comma-separated offered rates, events/sec")
		duration = flag.Duration("duration", 5*time.Second, "time spent at each rate")
		payload  = flag.Int("payload", 256, "publish payload size in bytes (min 10)")
		topic    = flag.String("topic", "loadgen/open/loop", "topic published and subscribed to")
		subs     = flag.Int("subs", 1, "subscriber connections (broker fan-out width)")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "unmeasured warmup at the first rate")
		drain    = flag.Duration("drain", 2*time.Second, "max wait for in-flight deliveries after each stage")
		sampleN  = flag.Uint64("sample-every", 0, "stamp every Nth publish with the sampled message-trace headers (0 = off)")
		out      = flag.String("out", "", "write the JSON report here ('' = stdout)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	offered, err := parseRates(*rates)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if *payload < payloadHeader {
		*payload = payloadHeader
	}
	if *subs < 1 {
		*subs = 1
	}

	node := transport.NewRealNode("", nil)

	// Subscribers first, so every measured event has its audience in place.
	recvers := make([]*subscriber, *subs)
	for i := range recvers {
		s, err := newSubscriber(node, *addr, *topic, i, len(offered))
		if err != nil {
			log.Fatalf("loadgen: subscriber %d: %v", i, err)
		}
		defer s.conn.Close() //nolint:errcheck
		recvers[i] = s
	}
	// Subscriptions travel on their own connections; give the broker a beat
	// to register them before measured traffic flows.
	time.Sleep(200 * time.Millisecond)

	pub, err := node.Dial(*addr)
	if err != nil {
		log.Fatalf("loadgen: publisher dial: %v", err)
	}
	defer pub.Close() //nolint:errcheck

	if *warmup > 0 {
		log.Printf("loadgen: warmup %v at %.0f events/s", *warmup, offered[0])
		if _, err := runStage(pub, *topic, stageWarmup, offered[0], *warmup, *payload, *sampleN); err != nil {
			log.Fatalf("loadgen: warmup: %v", err)
		}
	}

	report := Report{
		Benchmark:   "loadgen-open-loop",
		Addr:        *addr,
		Topic:       *topic,
		PayloadSize: *payload,
		Subscribers: *subs,
		DurationSec: duration.Seconds(),
	}
	for stage, rate := range offered {
		log.Printf("loadgen: stage %d/%d: %.0f events/s for %v", stage+1, len(offered), rate, *duration)
		sent, err := runStage(pub, *topic, uint16(stage), rate, *duration, *payload, *sampleN)
		if err != nil {
			log.Fatalf("loadgen: stage %d: %v", stage, err)
		}
		waitForDeliveries(recvers, stage, sent.count*uint64(*subs), *drain)
		report.Stages = append(report.Stages, summarize(recvers, stage, rate, sent))
		r := report.Stages[stage]
		log.Printf("loadgen: stage %d: achieved %.0f/s, delivered %d/%d, p50 %.0fµs p99 %.0fµs p999 %.0fµs",
			stage+1, r.AchievedRate, r.Delivered, r.Sent*uint64(*subs), r.P50us, r.P99us, r.P999us)
	}

	// Tear the subscriber connections down before reading their histograms:
	// the recv goroutines own them, and the close handshake is the memory
	// barrier that publishes their final writes.
	for _, s := range recvers {
		_ = s.conn.Close()
		<-s.done
	}

	enc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc) //nolint:errcheck
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates in %q", s)
	}
	return out, nil
}

// newSubscriber dials the broker, subscribes to the topic and starts the
// receive loop that timestamps deliveries against their scheduled departure.
func newSubscriber(node transport.Node, addr, topic string, idx, stages int) (*subscriber, error) {
	conn, err := node.Dial(addr)
	if err != nil {
		return nil, err
	}
	sub := event.New(event.TypeSubscribe, topic, nil)
	sub.Source = fmt.Sprintf("loadgen-sub-%d", idx)
	if err := conn.Send(event.Encode(sub)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	s := &subscriber{
		conn:      conn,
		hists:     make([]*stats.HDR, stages),
		delivered: make([]atomic.Uint64, stages),
		done:      make(chan struct{}),
	}
	for i := range s.hists {
		s.hists[i] = stats.NewHDR()
	}
	go s.recvLoop()
	return s, nil
}

func (s *subscriber) recvLoop() {
	defer close(s.done)
	for {
		frame, err := s.conn.Recv()
		if err != nil {
			return
		}
		now := time.Now().UnixNano()
		ev, err := event.Decode(frame)
		if err != nil || ev.Type != event.TypePublish || len(ev.Payload) < payloadHeader {
			continue
		}
		sched := int64(binary.BigEndian.Uint64(ev.Payload[:8]))
		stage := binary.BigEndian.Uint16(ev.Payload[8:10])
		if int(stage) >= len(s.hists) { // warmup or stray traffic
			continue
		}
		s.mu.Lock()
		s.hists[stage].Record(now - sched)
		s.mu.Unlock()
		s.delivered[stage].Add(1)
	}
}

// sentStats is what the pacing loop hands back about one stage.
type sentStats struct {
	count   uint64
	elapsed time.Duration
}

// runStage publishes duration*rate events on the open-loop schedule: event i
// departs at start + i/rate. When the sender falls behind it does not stretch
// the schedule — it sends back-to-back until caught up, and every event still
// carries its *scheduled* departure time, so queueing delay the generator
// itself suffered is charged to the measured latency, not hidden.
//
// With sampleEvery > 0, every Nth event is stamped with the sampled
// message-trace headers: publisher-decided sampling, which the ingress broker
// honours without re-rolling — its msg-publish span and everything downstream
// key off the event UUID.
func runStage(pub transport.Conn, topic string, stage uint16, rate float64, duration time.Duration, payloadSize int, sampleEvery uint64) (sentStats, error) {
	n := uint64(rate * duration.Seconds())
	if n == 0 {
		n = 1
	}
	interval := float64(time.Second) / rate
	body := make([]byte, payloadSize)
	binary.BigEndian.PutUint16(body[8:10], stage)

	start := time.Now()
	for i := uint64(0); i < n; i++ {
		sched := start.Add(time.Duration(float64(i) * interval))
		if wait := time.Until(sched); wait > 0 {
			time.Sleep(wait)
		}
		binary.BigEndian.PutUint64(body[:8], uint64(sched.UnixNano()))
		// event.New per send keeps the ID fresh: brokers dedup on identity.
		ev := event.New(event.TypePublish, topic, body)
		ev.Source = "loadgen-pub"
		ev.Timestamp = sched
		if sampleEvery > 0 && i%sampleEvery == 0 {
			ev.SetMsgTrace("loadgen-pub", 0)
		}
		if err := pub.Send(event.Encode(ev)); err != nil {
			return sentStats{count: i, elapsed: time.Since(start)}, err
		}
	}
	return sentStats{count: n, elapsed: time.Since(start)}, nil
}

// waitForDeliveries blocks until every subscriber has seen the stage's full
// event count, the flow has gone idle, or the drain budget runs out. Anything
// still missing afterwards is reported as lost.
func waitForDeliveries(recvers []*subscriber, stage int, want uint64, budget time.Duration) {
	deadline := time.Now().Add(budget)
	last := uint64(0)
	idleSince := time.Now()
	for time.Now().Before(deadline) {
		var got uint64
		for _, s := range recvers {
			got += s.delivered[stage].Load()
		}
		if got >= want {
			return
		}
		if got != last {
			last, idleSince = got, time.Now()
		} else if time.Since(idleSince) > 300*time.Millisecond {
			return // flow went idle below the target: count the rest as lost
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func summarize(recvers []*subscriber, stage int, rate float64, sent sentStats) StageResult {
	merged := stats.NewHDR()
	var delivered uint64
	var wallNs int64
	for _, s := range recvers {
		s.mu.Lock()
		merged.Merge(s.hists[stage])
		s.mu.Unlock()
		delivered += s.delivered[stage].Load()
	}
	wallNs = int64(sent.elapsed)
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	res := StageResult{
		OfferedRate:  rate,
		AchievedRate: float64(sent.count) / sent.elapsed.Seconds(),
		Sent:         sent.count,
		Delivered:    delivered,
		Lost:         int64(sent.count)*int64(len(recvers)) - int64(delivered),
		P50us:        us(merged.Quantile(0.50)),
		P99us:        us(merged.Quantile(0.99)),
		P999us:       us(merged.Quantile(0.999)),
		MaxUs:        us(merged.Max()),
		MeanUs:       merged.Mean() / 1e3,
	}
	if wallNs > 0 {
		res.DeliveredEps = float64(delivered) / (float64(wallNs) / 1e9)
	}
	return res
}
