// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (section 9), plus the ablation studies from DESIGN.md. Each
// benchmark executes the corresponding experiment end-to-end on the
// simulated WAN and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. Absolute times are model time on the
// simulator (or host-CPU time for the crypto figures); the comparison target
// is the paper's shape, recorded in EXPERIMENTS.md.
package narada

import (
	"io"
	"testing"

	"narada/internal/core"
	"narada/internal/experiments"
	"narada/internal/simnet"
	"narada/internal/topology"
)

// benchOpts keeps per-iteration work modest: the paper's full 120-run
// sampling is for cmd/nbexp; benchmarks use a smaller sample per iteration
// and vary the seed across iterations.
func benchOpts(i int) experiments.Options {
	return experiments.Options{Runs: 10, Keep: 8, Scale: 200, Seed: int64(i + 1)}
}

func BenchmarkTable1Sites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1Report(benchOpts(i))
		if _, err := r.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBreakdown(b *testing.B, topo string) {
	waitPct := 0.0
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBreakdown(topo, benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		waitPct += r.Mean.Percent(core.PhaseWaitResponses)
	}
	b.ReportMetric(waitPct/float64(b.N), "wait-%")
}

func BenchmarkFig2UnconnectedBreakdown(b *testing.B) { benchBreakdown(b, topology.Unconnected) }
func BenchmarkFig9StarBreakdown(b *testing.B)        { benchBreakdown(b, topology.Star) }
func BenchmarkFig11LinearBreakdown(b *testing.B)     { benchBreakdown(b, topology.Linear) }

func benchSiteTiming(b *testing.B, site string) {
	mean := 0.0
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSiteTiming(site, benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		mean += r.Summary.Mean
	}
	b.ReportMetric(mean/float64(b.N), "model-ms/discovery")
}

func BenchmarkFig3DiscoveryFSU(b *testing.B)         { benchSiteTiming(b, simnet.SiteFSU) }
func BenchmarkFig4DiscoveryCardiff(b *testing.B)     { benchSiteTiming(b, simnet.SiteCardiff) }
func BenchmarkFig5DiscoveryUMN(b *testing.B)         { benchSiteTiming(b, simnet.SiteUMN) }
func BenchmarkFig6DiscoveryNCSA(b *testing.B)        { benchSiteTiming(b, simnet.SiteNCSA) }
func BenchmarkFig7DiscoveryBloomington(b *testing.B) { benchSiteTiming(b, simnet.SiteBloomington) }

func BenchmarkFig12MulticastOnly(b *testing.B) {
	mean := 0.0
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMulticast(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		mean += r.Summary.Mean
	}
	b.ReportMetric(mean/float64(b.N), "model-ms/discovery")
}

func BenchmarkFig13CertValidation(b *testing.B) {
	mean := 0.0
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCertValidation(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		mean += r.Summary.Mean
	}
	b.ReportMetric(mean/float64(b.N), "ms/validation")
}

func BenchmarkFig14SignEncrypt(b *testing.B) {
	mean := 0.0
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSignEncrypt(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		mean += r.Summary.Mean
	}
	b.ReportMetric(mean/float64(b.N), "ms/roundtrip")
}

func benchAblation(b *testing.B, id string) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, benchOpts(i), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTimeoutSweep(b *testing.B)  { benchAblation(b, "abl-timeout") }
func BenchmarkAblationMaxResponses(b *testing.B)  { benchAblation(b, "abl-maxresp") }
func BenchmarkAblationTargetSetSize(b *testing.B) { benchAblation(b, "abl-target") }
func BenchmarkAblationLoadWeights(b *testing.B)   { benchAblation(b, "abl-weights") }
func BenchmarkAblationPacketLoss(b *testing.B)    { benchAblation(b, "abl-loss") }
func BenchmarkAblationInjection(b *testing.B)     { benchAblation(b, "abl-inject") }
func BenchmarkAblationBrokerScale(b *testing.B)   { benchAblation(b, "abl-scale") }
func BenchmarkAblationPingCount(b *testing.B)     { benchAblation(b, "abl-pings") }
func BenchmarkAblationBDNFailover(b *testing.B)   { benchAblation(b, "abl-failover") }
func BenchmarkAblationRouting(b *testing.B)       { benchAblation(b, "abl-routing") }
