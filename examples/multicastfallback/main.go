// Multicast fallback and cached-target-set rediscovery (paper §7): the
// scheme "needs only 1 functioning BDN to work. In fact the approach could
// work even if none of the BDNs within the system are functioning."
//
// Act 1 — all BDNs down, multicast on: the request reaches realm-local
// brokers directly (only the Indiana broker hears a Bloomington client,
// reproducing the Figure 12 lab-scoping).
//
// Act 2 — a client returns after a prolonged disconnect with its cached
// last-target-set: it replays the request straight at those brokers and
// completes discovery with no BDN and no multicast.
package main

import (
	"fmt"
	"log"
	"time"

	"narada/internal/bdn"
	"narada/internal/core"
	"narada/internal/simnet"
	"narada/internal/testbed"
	"narada/internal/topology"
)

func main() {
	// Act 1: no BDN at all; brokers join the discovery multicast group.
	tb, err := testbed.New(testbed.Options{
		Topology:  topology.Unconnected,
		Scale:     100,
		Seed:      33,
		NoBDN:     true,
		Multicast: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", core.Config{
		CollectWindow: 1 * time.Second,
		MaxResponses:  1,
	})
	res, err := d.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("act 1: no BDNs, multicast fallback\n")
	fmt.Printf("  discovered via %s: %s (realm %s) in %v\n",
		res.Via, res.Selected.LogicalAddress, res.Selected.Realm,
		res.Timing.Total().Round(time.Millisecond))
	fmt.Printf("  responses: %d (multicast is realm-scoped — far sites never hear it)\n",
		len(res.Responses))
	tb.Close()

	// Act 2: a functioning deployment, one successful discovery, then the
	// BDN dies. Rediscovery succeeds from the cached target set.
	tb2, err := testbed.New(testbed.Options{
		Topology:     topology.Star,
		InjectPolicy: bdn.InjectClosestFarthest,
		Scale:        100,
		Seed:         34,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb2.Close()
	d2 := tb2.NewDiscoverer(simnet.SiteBloomington, "returning-client", core.Config{
		CollectWindow: 2 * time.Second,
		MaxResponses:  5,
	})
	first, err := d2.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nact 2: initial discovery via %s selected %s; cached target set of %d\n",
		first.Via, first.Selected.LogicalAddress, len(d2.LastTargetSet()))

	tb2.BDN.Close()
	fmt.Println("  ... BDN crashes; client disconnects for a while ...")

	second, err := d2.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rediscovery via %s: %d responses, selected %s\n",
		second.Via, len(second.Responses), second.Selected.LogicalAddress)
	fmt.Println("\nNo single point of failure: discovery survived the loss of every BDN.")
}
