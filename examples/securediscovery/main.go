// Secure discovery (paper §9.1): brokers gate their responses on X.509
// credentials, and the discovery request itself is signed and encrypted
// between client and BDN-side recipient. An uncertified client gets no
// responses; a certified one completes discovery normally.
package main

import (
	"fmt"
	"log"
	"time"

	"narada/internal/core"
	"narada/internal/security"
	"narada/internal/simnet"
	"narada/internal/testbed"
	"narada/internal/topology"
)

func main() {
	// A miniature PKI: one CA certifies the clients the brokers trust.
	ca, err := security.NewCA("narada-grid-ca", 0)
	if err != nil {
		log.Fatal(err)
	}
	client, err := ca.Issue("certified-client", 0)
	if err != nil {
		log.Fatal(err)
	}
	pool := ca.Pool()

	// Every broker's response policy validates the requester's certificate
	// chain (the credential bytes are the DER certificate).
	verify := core.ResponsePolicy{Verifier: func(cred []byte) bool {
		_, err := security.ValidateCert(cred, pool)
		return err == nil
	}}
	tb, err := testbed.New(testbed.Options{
		Topology:       topology.Unconnected,
		Scale:          100,
		Seed:           5,
		Brokers:        testbed.PaperBrokers()[:3],
		InjectOverhead: time.Millisecond,
		Policy:         &verify,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	run := func(label string, creds []byte) {
		cfg := core.Config{CollectWindow: 1 * time.Second, MaxResponses: 3, Credentials: creds}
		d := tb.NewDiscoverer(simnet.SiteBloomington, label, cfg)
		res, err := d.Discover()
		if err != nil {
			fmt.Printf("%-22s -> %v\n", label, err)
			return
		}
		fmt.Printf("%-22s -> %d responses, selected %s\n",
			label, len(res.Responses), res.Selected.LogicalAddress)
	}

	fmt.Println("brokers validate each requester's X.509 certificate chain:")
	run("without certificate", nil)
	run("bogus certificate", []byte("i-am-totally-a-cert"))
	run("certified client", client.Cert.Raw)

	// The request body itself can also travel signed + encrypted
	// (Figure 14's operation).
	bdnID, err := ca.Issue("gridservicelocator.org", 0)
	if err != nil {
		log.Fatal(err)
	}
	body := core.EncodeDiscoveryRequest(&core.DiscoveryRequest{
		Requester: "certified-client", ResponseAddr: "bloomington/client:9000",
	})
	start := time.Now()
	sealed, err := security.Seal(client, bdnID.Cert, body)
	if err != nil {
		log.Fatal(err)
	}
	opened, sender, err := security.Open(bdnID, pool, sealed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsign+encrypt+decrypt+verify of a %d-byte request: %v (sender %s, %d bytes recovered)\n",
		len(body), time.Since(start).Round(time.Microsecond),
		sender.Subject.CommonName, len(opened))
}
