// Quickstart: stand up a BDN and three brokers on the simulated WAN,
// discover the nearest broker from a Bloomington client, connect to it,
// and exchange a publish/subscribe message — the complete entity lifecycle
// from the paper's introduction.
package main

import (
	"fmt"
	"log"
	"time"

	"narada/internal/bdn"
	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/simnet"
	"narada/internal/testbed"
	"narada/internal/topology"
)

func main() {
	// One call deploys network + BDN + brokers: 5 paper brokers, star
	// topology, all registered with the BDN at Bloomington.
	tb, err := testbed.New(testbed.Options{
		Topology:     topology.Star,
		InjectPolicy: bdn.InjectClosestFarthest,
		Scale:        100, // model time runs 100x faster than wall time
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	fmt.Printf("deployed %d brokers, %d links, BDN %s\n",
		len(tb.Brokers), len(tb.Edges), tb.BDN.Name())

	// A new entity arrives at Bloomington and issues a discovery request.
	d := tb.NewDiscoverer(simnet.SiteBloomington, "quickstart-client", core.Config{
		CollectWindow: 2 * time.Second,
		MaxResponses:  5,
	})
	res, err := d.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d brokers responded; target set of %d; selected %s (RTT %v)\n",
		len(res.Responses), len(res.TargetSet),
		res.Selected.LogicalAddress, res.SelectedRTT)
	fmt.Printf("\ndiscovery timing:\n%s\n", res.Timing.String())

	// Connect to the discovered broker and use the pub/sub substrate.
	node := tb.ClientNode(simnet.SiteBloomington, "quickstart-app")
	client, err := broker.Connect(node, res.Selected.Endpoint("tcp"), "quickstart-app")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.Subscribe("demo/greetings/*"); err != nil {
		log.Fatal(err)
	}
	tb.Net.Clock().Sleep(100 * time.Millisecond) // let the subscription land

	// Publish from a *different* broker: the substrate routes it across the
	// broker network to our subscriber.
	far := tb.BrokerByName("broker-cardiff")
	if err := far.Publish("demo/greetings/hello", []byte("hello from Cardiff")); err != nil {
		log.Fatal(err)
	}
	ev, err := client.Next(10 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreceived on %q: %s\n", ev.Topic, ev.Payload)
}
