// Data streams: combine three substrate services end-to-end — discover the
// nearest broker, then move a large compressed dataset over it using the
// fragmentation/coalescing service carried on reliable (acknowledged,
// redelivered, in-order) delivery. This is the paper's motivating workload:
// Grid clients moving large scientific payloads through the brokering
// substrate they discovered dynamically.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"narada/internal/bdn"
	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/fragment"
	"narada/internal/reliable"
	"narada/internal/simnet"
	"narada/internal/testbed"
	"narada/internal/topology"
)

func main() {
	tb, err := testbed.New(testbed.Options{
		Topology:     topology.Star,
		InjectPolicy: bdn.InjectClosestFarthest,
		Scale:        150,
		Seed:         99,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// 1. Discover the nearest broker from Bloomington.
	d := tb.NewDiscoverer(simnet.SiteBloomington, "stream-client", core.Config{
		CollectWindow: 2 * time.Second,
		MaxResponses:  5,
	})
	res, err := d.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %s (RTT %v)\n", res.Selected.LogicalAddress, res.SelectedRTT)
	addr := res.Selected.Endpoint("tcp")

	// 2. Reliable subscriber at FSU (the consumer of the dataset), attached
	// to its own nearest broker — events cross the broker network.
	subNode := tb.ClientNode(simnet.SiteFSU, "consumer")
	subBroker := tb.BrokerByName("broker-fsu")
	subClient, err := broker.Connect(subNode, subBroker.StreamAddr(), "consumer")
	if err != nil {
		log.Fatal(err)
	}
	defer subClient.Close()
	sub := reliable.NewSubscriber(subClient)
	defer sub.Close()
	if err := sub.Subscribe("datasets/climate/*"); err != nil {
		log.Fatal(err)
	}
	tb.Net.Clock().Sleep(200 * time.Millisecond)

	// 3. Reliable publisher at Bloomington, connected to the broker that
	// discovery selected.
	pubNode := tb.ClientNode(simnet.SiteBloomington, "producer")
	pubClient, err := broker.Connect(pubNode, addr, "producer")
	if err != nil {
		log.Fatal(err)
	}
	defer pubClient.Close()
	pub, err := reliable.NewPublisher(pubNode, pubClient, reliable.PublisherConfig{
		Source:         "producer",
		RedeliverAfter: 1 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()

	// 4. A large "dataset" — structured rows with varying readings, so it
	// compresses usefully but still spans multiple fragments.
	var sb bytes.Buffer
	for i := 0; i < 40000; i++ {
		fmt.Fprintf(&sb, "station-%04d,temp=%d.%d,pressure=%d,humidity=%d\n",
			i%512, 15+i%20, i%10, 990+i%40, 40+(i*7)%55)
	}
	dataset := sb.Bytes()
	frags, err := fragment.Split(dataset, fragment.Config{
		Compress:     true,
		FragmentSize: 16 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	carried := 0
	for _, f := range frags {
		carried += len(f.Data)
	}
	fmt.Printf("dataset %d bytes -> %d fragments carrying %d bytes (compressed %.1fx)\n",
		len(dataset), len(frags), carried, float64(len(dataset))/float64(carried))

	for _, f := range frags {
		if err := pub.Publish("datasets/climate/run42", fragment.Encode(f)); err != nil {
			log.Fatal(err)
		}
	}

	// 5. Coalesce at the consumer.
	co := fragment.NewCoalescer(0, nil)
	for {
		env, err := sub.Next(20 * time.Second)
		if err != nil {
			log.Fatalf("stream stalled: %v", err)
		}
		f, err := fragment.Decode(env.Payload)
		if err != nil {
			log.Fatal(err)
		}
		payload, done, err := co.Add(f)
		if err != nil {
			log.Fatal(err)
		}
		if done {
			if !bytes.Equal(payload, dataset) {
				log.Fatal("reassembled dataset differs from the original")
			}
			fmt.Printf("consumer reassembled %d bytes intact across the broker network\n",
				len(payload))
			break
		}
	}
	fmt.Println("discovery + reliable delivery + fragmentation: end-to-end OK")
}
