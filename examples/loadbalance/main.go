// Load balancing: the paper's §8 advantage 3 in action. A cluster runs one
// heavily loaded broker; clients keep selecting it until a fresh broker is
// added to the same cluster — after which discovery, seeing the usage
// metrics in the responses, preferentially sends new clients to the
// newcomer. No central coordination: the weighting in each client does it.
package main

import (
	"fmt"
	"log"
	"time"

	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/testbed"
	"narada/internal/topology"
	"narada/internal/transport"
)

const mib = 1024 * 1024

func main() {
	busy := metrics.Usage{
		TotalMemBytes: 512 * mib, UsedMemBytes: 470 * mib, CPULoad: 0.9,
	}
	tb, err := testbed.New(testbed.Options{
		Topology: topology.Unconnected,
		Scale:    100,
		Seed:     21,
		Brokers: []testbed.BrokerSpec{
			{Site: simnet.SiteIndianapolis, Name: "cluster-veteran", Register: true, Usage: busy},
			{Site: simnet.SiteFSU, Name: "faraway", Register: true},
		},
		InjectOverhead: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	discover := func(who string) string {
		cfg := core.Config{CollectWindow: 2 * time.Second, MaxResponses: 3}
		cfg.Selection.TargetSetSize = 1 // let the weighting decide
		d := tb.NewDiscoverer(simnet.SiteBloomington, who, cfg)
		res, err := d.Discover()
		if err != nil {
			log.Fatal(err)
		}
		return res.Selected.LogicalAddress
	}

	fmt.Println("before adding a broker to the cluster:")
	for i := 0; i < 3; i++ {
		fmt.Printf("  client %d -> %s\n", i, discover(fmt.Sprintf("pre-%d", i)))
	}

	// Operations adds a fresh broker to the overloaded cluster and it
	// advertises itself to the BDN like any other broker.
	node := transport.NewSimNode(tb.Net, simnet.SiteIndianapolis, "cluster-newcomer", 0)
	ntp := ntptime.NewService(node.Clock(), 0, nil)
	ntp.InitImmediately()
	fresh, err := broker.New(node, ntp, broker.Config{
		LogicalAddress: "cluster-newcomer",
		Realm:          simnet.SiteIndianapolis,
		Sampler: metrics.NewStaticSampler(metrics.Usage{
			TotalMemBytes: 512 * mib, UsedMemBytes: 24 * mib, CPULoad: 0.01,
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := fresh.Start(); err != nil {
		log.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.RegisterWithBDN(tb.BDN.Addr()); err != nil {
		log.Fatal(err)
	}
	tb.Net.Clock().Sleep(200 * time.Millisecond)
	fmt.Println("\nnewcomer added to the cluster and registered with the BDN")

	fmt.Println("\nafter:")
	for i := 0; i < 3; i++ {
		fmt.Printf("  client %d -> %s\n", i, discover(fmt.Sprintf("post-%d", i)))
	}
	fmt.Println("\nThe newly added broker is assimilated immediately: discovery")
	fmt.Println("operates on the current state of the broker network.")
}
