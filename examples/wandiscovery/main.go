// WAN discovery: run the paper's headline experiment interactively — issue
// discoveries from every Table 1 site on the unconnected topology and show
// that each client finds its nearest broker, with total times tracking the
// WAN round-trip times.
package main

import (
	"fmt"
	"log"
	"time"

	"narada/internal/core"
	"narada/internal/simnet"
	"narada/internal/testbed"
	"narada/internal/topology"
)

func main() {
	tb, err := testbed.New(testbed.Options{
		Topology: topology.Unconnected, // paper Figure 1: BDN O(N) fan-out
		Scale:    100,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	fmt.Println("site         selected broker          est responses  total time")
	fmt.Println("-----------  -----------------------  -------------  ----------")
	for _, site := range simnet.PaperSiteNames() {
		d := tb.NewDiscoverer(site, "client-"+site, core.Config{
			CollectWindow: 2 * time.Second,
			MaxResponses:  5,
		})
		res, err := d.Discover()
		if err != nil {
			log.Fatalf("%s: %v", site, err)
		}
		fmt.Printf("%-11s  %-23s  %13d  %10v\n",
			site, res.Selected.LogicalAddress, len(res.Responses),
			res.Timing.Total().Round(time.Millisecond))
	}
	fmt.Println("\nEach client connects to the broker at (or nearest to) its own site,")
	fmt.Println("exactly the dynamic nearest-broker behaviour the scheme promises.")
}
