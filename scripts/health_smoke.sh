#!/bin/sh
# health_smoke.sh smoke-tests the fabric health engine on real sockets: a BDN
# and two brokers export into an obscollect whose deadman horizon is three
# 1-second export intervals. Killing one broker must raise a firing deadman
# alert on /alerts (and the narada_alerts_firing gauge on /metrics); restarting
# a broker under the same logical identity must resolve it.
#
# Uses curl or wget, whichever the host has.
set -eu

BDN_STREAM="127.0.0.1:17410"
COLLECT_UDP="127.0.0.1:17510"
COLLECT_HTTP="127.0.0.1:17511"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "health-smoke: need curl or wget" >&2
        exit 1
    fi
}

# flat_alerts fetches /alerts with whitespace stripped, so one alert object's
# fields ("rule":"deadman","node":"health-b","state":"firing") grep as a unit.
flat_alerts() {
    fetch "http://$COLLECT_HTTP/alerts" | tr -d ' \n\t'
}

wait_for() { # wait_for <url> <what> <logfile>
    i=0
    until fetch "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "health-smoke: $2 never came up" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

go build -o "$TMP/broker" ./cmd/broker
go build -o "$TMP/bdn" ./cmd/bdn
go build -o "$TMP/obscollect" ./cmd/obscollect

"$TMP/bdn" -bind 127.0.0.1 -name gridservicelocator.org -stream-port 17410 \
    -obs-export "$COLLECT_UDP" >"$TMP/bdn.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.3

"$TMP/broker" -bind 127.0.0.1 -logical health-a -bdn "$BDN_STREAM" \
    -obs-export "$COLLECT_UDP" >"$TMP/broker-a.log" 2>&1 &
PIDS="$PIDS $!"

"$TMP/broker" -bind 127.0.0.1 -logical health-b -bdn "$BDN_STREAM" \
    -obs-export "$COLLECT_UDP" >"$TMP/broker-b.log" 2>&1 &
BPID=$!
PIDS="$PIDS $BPID"

"$TMP/obscollect" -listen "$COLLECT_UDP" -http "$COLLECT_HTTP" \
    -export-interval 1s -deadman-intervals 3 -health-interval 200ms \
    >"$TMP/obscollect.log" 2>&1 &
PIDS="$PIDS $!"

wait_for "http://$COLLECT_HTTP/healthz" "collector" "$TMP/obscollect.log"

# Both brokers must be visible on /fabric before the fault is injected.
i=0
while :; do
    FABRIC=$(fetch "http://$COLLECT_HTTP/fabric" | tr -d ' \n\t' || true)
    case "$FABRIC" in
    *'"name":"health-a"'*'"name":"health-b"'* | *'"name":"health-b"'*'"name":"health-a"'*) break ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "health-smoke: brokers never appeared on /fabric" >&2
        fetch "http://$COLLECT_HTTP/fabric" >&2 || true
        cat "$TMP/obscollect.log" >&2
        exit 1
    fi
    sleep 0.1
done

# No deadman may be firing while everything is alive.
if flat_alerts | grep -q '"rule":"deadman","node":"health-[ab]","state":"firing"'; then
    echo "health-smoke: deadman firing before the fault was injected" >&2
    fetch "http://$COLLECT_HTTP/alerts" >&2
    exit 1
fi

# Fault: kill broker b. Deadman horizon is 3 x 1s of silence; allow eval and
# scheduling slack on top before declaring the detector broken.
kill -9 "$BPID"
wait "$BPID" 2>/dev/null || true
KILLED_AT=$(date +%s)
i=0
until flat_alerts | grep -q '"rule":"deadman","node":"health-b","state":"firing"'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "health-smoke: deadman never fired for the killed broker" >&2
        fetch "http://$COLLECT_HTTP/alerts" >&2 || true
        cat "$TMP/obscollect.log" >&2
        exit 1
    fi
    sleep 0.1
done
FIRE_LATENCY=$(($(date +%s) - KILLED_AT))

# The firing alert is also a gauge on the collector's own exposition.
fetch "http://$COLLECT_HTTP/metrics" | grep 'narada_alerts_firing' | grep -q 'health-b' || {
    echo "health-smoke: narada_alerts_firing gauge missing for health-b" >&2
    fetch "http://$COLLECT_HTTP/metrics" | grep narada_alerts >&2 || true
    exit 1
}

# The survivor must not be implicated.
if flat_alerts | grep -q '"rule":"deadman","node":"health-a","state":"firing"'; then
    echo "health-smoke: deadman fired for the surviving broker" >&2
    fetch "http://$COLLECT_HTTP/alerts" >&2
    exit 1
fi

# Recovery: restart the broker under the same logical identity; fresh
# snapshots must resolve the alert (hysteresis: 3 export intervals).
"$TMP/broker" -bind 127.0.0.1 -logical health-b -bdn "$BDN_STREAM" \
    -obs-export "$COLLECT_UDP" >"$TMP/broker-b2.log" 2>&1 &
PIDS="$PIDS $!"
i=0
until flat_alerts | grep -q '"rule":"deadman","node":"health-b","state":"resolved"'; do
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "health-smoke: deadman never resolved after restart" >&2
        fetch "http://$COLLECT_HTTP/alerts" >&2 || true
        cat "$TMP/obscollect.log" >&2
        cat "$TMP/broker-b2.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "health-smoke: ok (deadman fired ~${FIRE_LATENCY}s after kill, gauge exported, survivor clean, resolved after restart)"
