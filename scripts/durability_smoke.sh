#!/bin/sh
# durability_smoke.sh smoke-tests the replicated BDN registry on real
# sockets: three BDNs form a primary/standby cluster (-data-dir, -peers,
# -lease), two supervised brokers register with all of them, and the primary
# is killed with SIGKILL. A standby must promote itself, keep the full
# replicated registration table, and keep answering discovery — with ZERO
# broker re-registrations: the brokers' narada_broker_reconnects_total
# metric for kind="bdn" must stay at zero, because the survivors never
# dropped their registration links and the replicated WAL already holds the
# table.
#
# Uses curl or wget, whichever the host has.
set -eu

BDN1_STREAM="127.0.0.1:17620"
BDN1_HTTP="127.0.0.1:17622"
BDN2_STREAM="127.0.0.1:17630"
BDN2_HTTP="127.0.0.1:17632"
BDN3_STREAM="127.0.0.1:17640"
BDN3_HTTP="127.0.0.1:17642"
BROKER1_HTTP="127.0.0.1:17650"
BROKER2_HTTP="127.0.0.1:17651"
LEASE="1s"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "durability-smoke: need curl or wget" >&2
        exit 1
    fi
}

wait_for() { # wait_for <url> <what> <logfile>
    i=0
    until fetch "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "durability-smoke: $2 never came up" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# role reports a member's narada_replica_role gauge (1 = primary), empty on
# fetch failure.
role() { # role <http-addr>
    fetch "http://$1/metrics" 2>/dev/null | awk '/^narada_replica_role/ {print $NF}' || true
}

# wait_primary polls the given members until one reports role 1; prints the
# winner's http addr.
wait_primary() { # wait_primary <what> <http-addr>...
    what="$1"
    shift
    i=0
    while :; do
        for m in "$@"; do
            if [ "$(role "$m")" = "1" ]; then
                echo "$m"
                return 0
            fi
        done
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "durability-smoke: no primary elected $what" >&2
            for m in "$@"; do
                echo "--- $m:" >&2
                fetch "http://$m/metrics" | grep narada_replica >&2 || true
            done
            exit 1
        fi
        sleep 0.1
    done
}

# wait_brokers polls a BDN's broker-count gauge until it reaches the want.
wait_brokers() { # wait_brokers <http-addr> <want> <what>
    i=0
    until fetch "http://$1/metrics" | grep '^narada_bdn_brokers' | grep -q " $2\$"; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "durability-smoke: $1 never reached $2 registrations $3" >&2
            fetch "http://$1/metrics" | grep narada_bdn >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

start_bdn() { # start_bdn <name> <stream> <udp> <http> <replica> <peers> <datadir> <logfile>
    "$TMP/bdn" -bind 127.0.0.1 -name "$1" -stream-port "$2" -udp-port "$3" \
        -telemetry-addr "127.0.0.1:$4" -replica-port "$5" -peers "$6" \
        -data-dir "$7" -lease "$LEASE" >"$8" 2>&1 &
    PIDS="$PIDS $!"
    eval "BDN_PID_$4=$!"
}

go build -o "$TMP/broker" ./cmd/broker
go build -o "$TMP/bdn" ./cmd/bdn
go build -o "$TMP/discover" ./cmd/discover

start_bdn gridservicelocator.org 17620 17621 17622 17623 "127.0.0.1:17633,127.0.0.1:17643" "$TMP/data/org" "$TMP/bdn1.log"
start_bdn gridservicelocator.com 17630 17631 17632 17633 "127.0.0.1:17623,127.0.0.1:17643" "$TMP/data/com" "$TMP/bdn2.log"
start_bdn gridservicelocator.net 17640 17641 17642 17643 "127.0.0.1:17623,127.0.0.1:17633" "$TMP/data/net" "$TMP/bdn3.log"
wait_for "http://$BDN1_HTTP/healthz" "bdn1" "$TMP/bdn1.log"
wait_for "http://$BDN2_HTTP/healthz" "bdn2" "$TMP/bdn2.log"
wait_for "http://$BDN3_HTTP/healthz" "bdn3" "$TMP/bdn3.log"

PRIMARY_HTTP="$(wait_primary "at bootstrap" "$BDN1_HTTP" "$BDN2_HTTP" "$BDN3_HTTP")"
echo "durability-smoke: primary elected ($PRIMARY_HTTP)"

"$TMP/broker" -bind 127.0.0.1 -logical dur-a -bdn "$BDN1_STREAM,$BDN2_STREAM,$BDN3_STREAM" \
    -supervise -heartbeat 500ms -telemetry-addr "$BROKER1_HTTP" >"$TMP/broker1.log" 2>&1 &
PIDS="$PIDS $!"
"$TMP/broker" -bind 127.0.0.1 -logical dur-b -bdn "$BDN1_STREAM,$BDN2_STREAM,$BDN3_STREAM" \
    -supervise -heartbeat 500ms -telemetry-addr "$BROKER2_HTTP" >"$TMP/broker2.log" 2>&1 &
PIDS="$PIDS $!"
wait_for "http://$BROKER1_HTTP/healthz" "broker dur-a" "$TMP/broker1.log"
wait_for "http://$BROKER2_HTTP/healthz" "broker dur-b" "$TMP/broker2.log"
wait_brokers "$BDN1_HTTP" 2 "at bootstrap"
wait_brokers "$BDN2_HTTP" 2 "at bootstrap"
wait_brokers "$BDN3_HTTP" 2 "at bootstrap"

# Baseline: discovery over the healthy cluster answers.
"$TMP/discover" -bind 127.0.0.1 -bdn "$BDN1_STREAM,$BDN2_STREAM,$BDN3_STREAM" \
    -window 2s -name dur-req1 >"$TMP/discover1.log" 2>&1 || {
    echo "durability-smoke: initial discovery failed" >&2
    cat "$TMP/discover1.log" >&2
    exit 1
}
grep -q 'selected broker: dur-' "$TMP/discover1.log" || {
    echo "durability-smoke: initial discovery selected nothing" >&2
    cat "$TMP/discover1.log" >&2
    exit 1
}

# Fault: SIGKILL the primary — no goodbye, no final snapshot, exactly like a
# crashed discovery-node process.
eval "PRIMARY_PID=\$BDN_PID_$(echo "$PRIMARY_HTTP" | sed 's/.*://')"
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
echo "durability-smoke: primary killed (pid $PRIMARY_PID)"

SURVIVORS=""
SURVIVOR_STREAMS=""
for pair in "$BDN1_HTTP=$BDN1_STREAM" "$BDN2_HTTP=$BDN2_STREAM" "$BDN3_HTTP=$BDN3_STREAM"; do
    http="${pair%%=*}"
    stream="${pair#*=}"
    if [ "$http" != "$PRIMARY_HTTP" ]; then
        SURVIVORS="$SURVIVORS $http"
        SURVIVOR_STREAMS="$SURVIVOR_STREAMS,$stream"
    fi
done
SURVIVOR_STREAMS="${SURVIVOR_STREAMS#,}"

# Recovery: a standby claims the lease and promotes itself.
# shellcheck disable=SC2086
NEW_PRIMARY="$(wait_primary "after the kill" $SURVIVORS)"
echo "durability-smoke: standby promoted ($NEW_PRIMARY)"

# The promoted member holds the FULL replicated table without anyone
# re-registering.
wait_brokers "$NEW_PRIMARY" 2 "after the failover"

# Discovery against the survivors still answers.
"$TMP/discover" -bind 127.0.0.1 -bdn "$SURVIVOR_STREAMS" \
    -window 2s -name dur-req2 >"$TMP/discover2.log" 2>&1 || {
    echo "durability-smoke: post-failover discovery failed" >&2
    cat "$TMP/discover2.log" >&2
    exit 1
}
grep -q 'selected broker: dur-' "$TMP/discover2.log" || {
    echo "durability-smoke: post-failover discovery selected nothing" >&2
    cat "$TMP/discover2.log" >&2
    exit 1
}

# The whole point: zero broker re-registrations. The reconnects counter for
# kind="bdn" counts successful registration REDIALS; the surviving BDNs
# never dropped a session, so it must still read 0 on both brokers.
for b in "$BROKER1_HTTP" "$BROKER2_HTTP"; do
    if fetch "http://$b/metrics" | grep 'narada_broker_reconnects_total' | grep 'kind="bdn"' | grep -qv ' 0$'; then
        echo "durability-smoke: broker $b re-registered after the failover" >&2
        fetch "http://$b/metrics" | grep narada_broker_reconnect >&2 || true
        exit 1
    fi
done

echo "durability-smoke: ok (primary killed, standby promoted with full table, discovery healthy, zero re-registrations)"
