#!/bin/sh
# obs_smoke.sh boots one real broker with telemetry enabled, then checks the
# /healthz and /metrics endpoints: healthz must report ok, and the exposition
# must show at least 12 distinct narada_ metric families. Uses curl or wget,
# whichever the host has.
set -eu

ADDR="127.0.0.1:18081"
TMP="$(mktemp -d)"
trap 'kill "$BROKER_PID" 2>/dev/null || true; wait "$BROKER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "obs-smoke: need curl or wget" >&2
        exit 1
    fi
}

go build -o "$TMP/broker" ./cmd/broker
"$TMP/broker" -bind 127.0.0.1 -logical smoke-broker -telemetry-addr "$ADDR" \
    >"$TMP/broker.log" 2>&1 &
BROKER_PID=$!

# Wait for the telemetry endpoint to come up.
i=0
until fetch "http://$ADDR/healthz" >"$TMP/healthz" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: telemetry endpoint never came up" >&2
        cat "$TMP/broker.log" >&2
        exit 1
    fi
    sleep 0.1
done

grep -q '"status":"ok"' "$TMP/healthz" || {
    echo "obs-smoke: /healthz not ok: $(cat "$TMP/healthz")" >&2
    exit 1
}

fetch "http://$ADDR/metrics" >"$TMP/metrics"
FAMILIES=$(grep -c '^# TYPE narada_' "$TMP/metrics" || true)
if [ "$FAMILIES" -lt 12 ]; then
    echo "obs-smoke: only $FAMILIES narada_ families on /metrics, want >= 12" >&2
    grep '^# TYPE' "$TMP/metrics" >&2 || true
    exit 1
fi

fetch "http://$ADDR/debug/traces" >/dev/null

echo "obs-smoke: ok (/healthz ok, $FAMILIES metric families, /debug/traces serving)"
