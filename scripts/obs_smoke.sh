#!/bin/sh
# obs_smoke.sh smoke-tests the observability plane on real sockets, twice
# over:
#
#  1. Node telemetry: one broker with -telemetry-addr must serve /healthz,
#     >= 12 narada_ metric families on /metrics, and /debug/traces.
#  2. Fabric observability: a BDN + broker (both exporting via -obs-export)
#     and an obscollect running the synthetic prober; one probe trace must
#     assemble end to end — spans from the prober, the BDN and the broker on
#     the collector's /traces/{id} — and /fabric must list all three nodes.
#
# Uses curl or wget, whichever the host has.
set -eu

ADDR="127.0.0.1:18081"
BDN_STREAM="127.0.0.1:17010"
COLLECT_UDP="127.0.0.1:17310"
COLLECT_HTTP="127.0.0.1:17311"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "obs-smoke: need curl or wget" >&2
        exit 1
    fi
}

wait_for() { # wait_for <url> <out> <what> <logfile>
    i=0
    until fetch "$1" >"$2" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "obs-smoke: $3 never came up" >&2
            cat "$4" >&2
            exit 1
        fi
        sleep 0.1
    done
}

go build -o "$TMP/broker" ./cmd/broker
go build -o "$TMP/bdn" ./cmd/bdn
go build -o "$TMP/obscollect" ./cmd/obscollect

# --- Part 1: node telemetry endpoint -------------------------------------

"$TMP/broker" -bind 127.0.0.1 -logical smoke-broker -telemetry-addr "$ADDR" \
    >"$TMP/broker.log" 2>&1 &
PIDS="$PIDS $!"

wait_for "http://$ADDR/healthz" "$TMP/healthz" "telemetry endpoint" "$TMP/broker.log"

grep -q '"status":"ok"' "$TMP/healthz" || {
    echo "obs-smoke: /healthz not ok: $(cat "$TMP/healthz")" >&2
    exit 1
}

fetch "http://$ADDR/metrics" >"$TMP/metrics"
FAMILIES=$(grep -c '^# TYPE narada_' "$TMP/metrics" || true)
if [ "$FAMILIES" -lt 12 ]; then
    echo "obs-smoke: only $FAMILIES narada_ families on /metrics, want >= 12" >&2
    grep '^# TYPE' "$TMP/metrics" >&2 || true
    exit 1
fi

fetch "http://$ADDR/debug/traces" >/dev/null

# --- Part 2: collector + prober end to end -------------------------------

"$TMP/bdn" -bind 127.0.0.1 -name gridservicelocator.org -stream-port 17010 \
    -obs-export "$COLLECT_UDP" >"$TMP/bdn.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.3

"$TMP/broker" -bind 127.0.0.1 -logical fabric-broker -bdn "$BDN_STREAM" \
    -obs-export "$COLLECT_UDP" >"$TMP/fabric-broker.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.3

"$TMP/obscollect" -listen "$COLLECT_UDP" -http "$COLLECT_HTTP" \
    -probe-interval 1s -probe-bdn "$BDN_STREAM" -probe-window 500ms \
    >"$TMP/obscollect.log" 2>&1 &
PIDS="$PIDS $!"

wait_for "http://$COLLECT_HTTP/healthz" "$TMP/chealthz" "collector" "$TMP/obscollect.log"

# Wait for one probe trace to assemble with spans from all three nodes.
i=0
TRACE_ID=""
while :; do
    fetch "http://$COLLECT_HTTP/traces" >"$TMP/traces" 2>/dev/null || true
    TRACE_ID=$(sed -n 's/.*"id": "\([0-9a-f-]\{36\}\)".*/\1/p' "$TMP/traces" | head -1)
    if [ -n "$TRACE_ID" ]; then
        fetch "http://$COLLECT_HTTP/traces/$TRACE_ID" >"$TMP/trace" 2>/dev/null || true
        if grep -q '"node": "obsprobe"' "$TMP/trace" &&
            grep -q '"node": "gridservicelocator.org"' "$TMP/trace" &&
            grep -q '"node": "fabric-broker"' "$TMP/trace"; then
            break
        fi
    fi
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "obs-smoke: no probe trace assembled end to end" >&2
        echo "--- traces:" >&2; cat "$TMP/traces" >&2 || true
        echo "--- trace $TRACE_ID:" >&2; cat "$TMP/trace" >&2 || true
        echo "--- obscollect:" >&2; cat "$TMP/obscollect.log" >&2
        echo "--- bdn:" >&2; cat "$TMP/bdn.log" >&2
        echo "--- broker:" >&2; cat "$TMP/fabric-broker.log" >&2
        exit 1
    fi
    sleep 0.1
done

fetch "http://$COLLECT_HTTP/fabric" >"$TMP/fabric"
for node in obsprobe gridservicelocator.org fabric-broker; do
    grep -q "\"name\": \"$node\"" "$TMP/fabric" || {
        echo "obs-smoke: /fabric missing node $node" >&2
        cat "$TMP/fabric" >&2
        exit 1
    }
done

# The prober keeps a private registry and ships SLI snapshots over the export
# plane one probe interval after startup — poll for the first one, then insist
# the series appears exactly once (shipping a collector-shared registry back
# through ingest would duplicate it).
i=0
while :; do
    fetch "http://$COLLECT_HTTP/metrics" >"$TMP/fedmetrics"
    N=$(grep -c 'narada_probe_runs_total{node="obsprobe",outcome="ok"}' "$TMP/fedmetrics" || true)
    [ "$N" -eq 1 ] && break
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: probe SLI appears $N times on federated /metrics, want exactly 1" >&2
        grep 'narada_probe' "$TMP/fedmetrics" >&2 || true
        exit 1
    fi
    sleep 0.1
done

# Probe SLIs must also land in the retention store and serve on /query. The
# first snapshot only establishes the counter baseline; deltas (points) appear
# once a later snapshot shows the counter moved, so poll a few more intervals.
i=0
while :; do
    QUERY=$(fetch "http://$COLLECT_HTTP/query?metric=narada_probe_runs_total&node=obsprobe&res=1s&since=60s" | tr -d ' \n\t')
    case "$QUERY" in
    *'"kind":"counter"'*'"points":[{'*) break ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 80 ]; then
        echo "obs-smoke: /query has no retained probe series: $QUERY" >&2
        exit 1
    fi
    sleep 0.1
done

echo "obs-smoke: ok (/healthz ok, $FAMILIES metric families, probe trace $TRACE_ID assembled across obsprobe+bdn+broker, /fabric and federated /metrics serving)"
