#!/bin/sh
# chaos_smoke.sh smoke-tests the self-healing fabric on real sockets: a BDN
# and one supervised broker (-supervise, heartbeats, periodic advertisement
# refresh with a TTL). The BDN is killed and restarted on the same port; the
# broker's supervision must redial the registration link and re-advertise, so
# the restarted (empty) BDN lists the broker again and a fresh discovery
# still selects it — with the healing visible on the broker's own
# narada_broker_reconnects_total metric.
#
# Uses curl or wget, whichever the host has.
set -eu

BDN_STREAM="127.0.0.1:17610"
BDN_HTTP="127.0.0.1:17612"
BROKER_HTTP="127.0.0.1:17613"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "chaos-smoke: need curl or wget" >&2
        exit 1
    fi
}

wait_for() { # wait_for <url> <what> <logfile>
    i=0
    until fetch "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "chaos-smoke: $2 never came up" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# wait_registered polls the BDN's broker-count gauge until it reports at
# least one stored registration.
wait_registered() { # wait_registered <what> <logfile>
    i=0
    until fetch "http://$BDN_HTTP/metrics" | grep '^narada_bdn_brokers' | grep -qv ' 0$'; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "chaos-smoke: broker never registered $1" >&2
            fetch "http://$BDN_HTTP/metrics" | grep narada_bdn >&2 || true
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_bdn() { # start_bdn <logfile>
    "$TMP/bdn" -bind 127.0.0.1 -name gridservicelocator.org -stream-port 17610 \
        -udp-port 17611 -telemetry-addr "$BDN_HTTP" -ad-ttl 5s -sweep-every 500ms \
        >"$1" 2>&1 &
    BDN_PID=$!
    PIDS="$PIDS $BDN_PID"
    wait_for "http://$BDN_HTTP/healthz" "bdn" "$1"
}

go build -o "$TMP/broker" ./cmd/broker
go build -o "$TMP/bdn" ./cmd/bdn
go build -o "$TMP/discover" ./cmd/discover

start_bdn "$TMP/bdn.log"

"$TMP/broker" -bind 127.0.0.1 -logical chaos-a -bdn "$BDN_STREAM" \
    -supervise -heartbeat 500ms -advertise-every 1s \
    -telemetry-addr "$BROKER_HTTP" >"$TMP/broker.log" 2>&1 &
PIDS="$PIDS $!"
wait_for "http://$BROKER_HTTP/healthz" "broker" "$TMP/broker.log"
wait_registered "at the initial bdn" "$TMP/broker.log"

# Baseline: discovery over the healthy fabric selects the broker.
"$TMP/discover" -bind 127.0.0.1 -bdn "$BDN_STREAM" -window 2s -name chaos-req >"$TMP/discover1.log" 2>&1 || {
    echo "chaos-smoke: initial discovery failed" >&2
    cat "$TMP/discover1.log" >&2
    exit 1
}
grep -q 'selected broker: chaos-a' "$TMP/discover1.log" || {
    echo "chaos-smoke: initial discovery did not select chaos-a" >&2
    cat "$TMP/discover1.log" >&2
    exit 1
}

# Fault: the BDN dies abruptly, taking every stored registration with it.
kill -9 "$BDN_PID"
wait "$BDN_PID" 2>/dev/null || true
sleep 1

# Recovery: a fresh BDN on the same port starts EMPTY; only the broker's
# supervised registration link can repopulate it.
start_bdn "$TMP/bdn2.log"
wait_registered "after the bdn restart" "$TMP/broker.log"

# The healing must have been recorded by the broker's supervision metrics.
fetch "http://$BROKER_HTTP/metrics" | grep 'narada_broker_reconnects_total' | grep 'kind="bdn"' | grep -qv ' 0$' || {
    echo "chaos-smoke: broker shows no bdn reconnect after the restart" >&2
    fetch "http://$BROKER_HTTP/metrics" | grep narada_broker_reconnect >&2 || true
    exit 1
}

# A fresh discovery against the restarted BDN selects the re-registered broker.
"$TMP/discover" -bind 127.0.0.1 -bdn "$BDN_STREAM" -window 2s -name chaos-req2 >"$TMP/discover2.log" 2>&1 || {
    echo "chaos-smoke: post-restart discovery failed" >&2
    cat "$TMP/discover2.log" >&2
    exit 1
}
grep -q 'selected broker: chaos-a' "$TMP/discover2.log" || {
    echo "chaos-smoke: post-restart discovery did not select chaos-a" >&2
    cat "$TMP/discover2.log" >&2
    exit 1
}

echo "chaos-smoke: ok (bdn killed + restarted, broker re-registered itself, discovery healthy)"
