#!/bin/sh
# bench_gate.sh is the publish fast-path performance gate: it re-runs
# BenchmarkPublishFanout COUNT times, takes the best (minimum) ns/op — the
# run least disturbed by scheduler noise — and compares it against the
# gate_ns_op / gate_allocs_op recorded in BENCH_fanout.json. More than a 2%
# ns/op regression, or any allocs/op above the recorded gate, fails.
#
#   sh scripts/bench_gate.sh            # defaults: COUNT=8, 2% threshold
#   COUNT=12 REGRESSION_PCT=5 sh scripts/bench_gate.sh
set -eu
cd "$(dirname "$0")/.."

BENCH_FILE=${BENCH_FILE:-BENCH_fanout.json}
COUNT=${COUNT:-8}
REGRESSION_PCT=${REGRESSION_PCT:-2}

if [ ! -f "$BENCH_FILE" ]; then
    echo "bench-gate: $BENCH_FILE not found" >&2
    exit 1
fi

GATE_NS=$(sed -n 's/.*"gate_ns_op"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$BENCH_FILE" | head -1)
GATE_ALLOCS=$(sed -n 's/.*"gate_allocs_op"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$BENCH_FILE" | head -1)
GATE_SAMPLED_ALLOCS=$(sed -n 's/.*"gate_sampled_allocs_op"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$BENCH_FILE" | head -1)
if [ -z "$GATE_NS" ] || [ -z "$GATE_ALLOCS" ]; then
    echo "bench-gate: $BENCH_FILE carries no gate_ns_op / gate_allocs_op" >&2
    exit 1
fi

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

echo "bench-gate: running BenchmarkPublishFanout x$COUNT (gate: ${GATE_NS} ns/op +${REGRESSION_PCT}%, ${GATE_ALLOCS} allocs/op)"
go test -run '^$' -bench 'BenchmarkPublishFanout$' -benchmem -benchtime=1s \
    -count "$COUNT" ./internal/broker/ | tee "$OUT"

# Benchmark lines: name  iters  X ns/op  Y MB/s  Z B/op  W allocs/op
awk -v gate_ns="$GATE_NS" -v gate_allocs="$GATE_ALLOCS" -v pct="$REGRESSION_PCT" '
/^BenchmarkPublishFanout/ {
    for (i = 1; i <= NF; i++) {
        if ($i == "ns/op" && (best_ns == "" || $(i-1) + 0 < best_ns)) best_ns = $(i-1) + 0
        if ($i == "allocs/op" && (best_allocs == "" || $(i-1) + 0 < best_allocs)) best_allocs = $(i-1) + 0
    }
    runs++
}
END {
    if (runs == 0) { print "bench-gate: no benchmark output parsed" > "/dev/stderr"; exit 1 }
    limit = gate_ns * (1 + pct / 100)
    printf "bench-gate: best of %d runs: %.0f ns/op (limit %.0f), %d allocs/op (gate %d)\n", \
        runs, best_ns, limit, best_allocs, gate_allocs
    failed = 0
    if (best_ns > limit) {
        printf "bench-gate: FAIL: %.0f ns/op exceeds %.0f (gate %.0f +%s%%)\n", best_ns, limit, gate_ns, pct > "/dev/stderr"
        failed = 1
    }
    if (best_allocs > gate_allocs) {
        printf "bench-gate: FAIL: %d allocs/op exceeds gate %d\n", best_allocs, gate_allocs > "/dev/stderr"
        failed = 1
    }
    exit failed
}' "$OUT"

# Sampled-path gate: with message tracing live (1-in-N sampler + tracer) the
# fan-out must amortise to the recorded allocs/op — sampling may spend wall
# time on its winners, so only allocations are gated, not ns/op.
if [ -n "$GATE_SAMPLED_ALLOCS" ]; then
    echo "bench-gate: running BenchmarkPublishFanoutSampled x2 (gate: ${GATE_SAMPLED_ALLOCS} allocs/op, ns ungated)"
    go test -run '^$' -bench 'BenchmarkPublishFanoutSampled$' -benchmem -benchtime=1s \
        -count 2 ./internal/broker/ | tee "$OUT"
    awk -v gate_allocs="$GATE_SAMPLED_ALLOCS" '
    /^BenchmarkPublishFanoutSampled/ {
        for (i = 1; i <= NF; i++)
            if ($i == "allocs/op" && (best == "" || $(i-1) + 0 < best)) best = $(i-1) + 0
        runs++
    }
    END {
        if (runs == 0) { print "bench-gate: no sampled benchmark output parsed" > "/dev/stderr"; exit 1 }
        printf "bench-gate: sampled best of %d runs: %d allocs/op (gate %d)\n", runs, best, gate_allocs
        if (best > gate_allocs) {
            printf "bench-gate: FAIL: sampled path %d allocs/op exceeds gate %d\n", best, gate_allocs > "/dev/stderr"
            exit 1
        }
    }' "$OUT"
fi

echo "bench-gate: ok"
