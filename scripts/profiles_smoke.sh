#!/bin/sh
# profiles_smoke.sh smoke-tests the continuous-profiling plane on real
# processes: a BDN and two brokers run with -profile-every and an announced
# -telemetry-addr, a loadgen stage keeps one broker genuinely busy, and an
# obscollect pulls their periodic pprof captures into its spool. The collector
# must (1) serve the pulled captures on /profiles with a working ?view=top
# rendering, (2) spool them to -profile-dir, and (3) when a broker is killed,
# attach that node's freshest retained captures to the firing deadman alert —
# the flight recorder's dead-node fallback, which is the whole point of
# pulling continuously: the post-mortem evidence was collected pre-mortem.
#
# Uses curl or wget, whichever the host has.
set -eu
cd "$(dirname "$0")/.."

COLLECT_UDP="127.0.0.1:17810"
COLLECT_HTTP="127.0.0.1:17811"
BDN_STREAM="127.0.0.1:17812"
A_STREAM=17813
A_UDP=17814
A_TELEMETRY="127.0.0.1:17815"
B_STREAM=17816
B_UDP=17817
B_TELEMETRY="127.0.0.1:17818"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "profiles-smoke: need curl or wget" >&2
        exit 1
    fi
}

flat() { tr -d ' \n\t'; }

go build -o "$TMP/broker" ./cmd/broker
go build -o "$TMP/bdn" ./cmd/bdn
go build -o "$TMP/loadgen" ./cmd/loadgen
go build -o "$TMP/obscollect" ./cmd/obscollect

"$TMP/obscollect" -listen "$COLLECT_UDP" -http "$COLLECT_HTTP" \
    -export-interval 1s -deadman-intervals 3 -health-interval 200ms \
    -profile-pull 500ms -flight-cpu-seconds 1 -profile-dir "$TMP/spool" \
    >"$TMP/obscollect.log" 2>&1 &
PIDS="$PIDS $!"

"$TMP/bdn" -bind 127.0.0.1 -name gridservicelocator.org -stream-port 17812 \
    -obs-export "$COLLECT_UDP" >"$TMP/bdn.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.3

"$TMP/broker" -bind 127.0.0.1 -logical prof-a -bdn "$BDN_STREAM" \
    -stream-port "$A_STREAM" -udp-port "$A_UDP" \
    -obs-export "$COLLECT_UDP" -telemetry-addr "$A_TELEMETRY" \
    -profile-every 1s >"$TMP/broker-a.log" 2>&1 &
PIDS="$PIDS $!"

"$TMP/broker" -bind 127.0.0.1 -logical prof-b -bdn "$BDN_STREAM" \
    -stream-port "$B_STREAM" -udp-port "$B_UDP" \
    -obs-export "$COLLECT_UDP" -telemetry-addr "$B_TELEMETRY" \
    -profile-every 1s >"$TMP/broker-b.log" 2>&1 &
BPID=$!
PIDS="$PIDS $BPID"

i=0
until fetch "http://$COLLECT_HTTP/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "profiles-smoke: collector never came up" >&2
        cat "$TMP/obscollect.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Drive real publish load through prof-a while its profiler samples, so the
# captured CPU profiles are of a broker actually doing its job. The probe
# loop doubles as the broker-up wait.
i=0
until "$TMP/loadgen" -addr "127.0.0.1:$A_STREAM" -rates 100 -duration 100ms \
    -warmup 0 -subs 1 -drain 500ms -out "$TMP/probe.json" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 30 ]; then
        echo "profiles-smoke: broker prof-a never came up" >&2
        cat "$TMP/broker-a.log" >&2
        exit 1
    fi
    sleep 0.2
done
"$TMP/loadgen" -addr "127.0.0.1:$A_STREAM" -rates 2000 -duration 2s -subs 2 \
    -out "$TMP/load.json" >"$TMP/loadgen.log" 2>&1 &
PIDS="$PIDS $!"

# Periodic captures from BOTH brokers must land in the collector via the pull
# loop (prof-b's are the post-mortem evidence for the kill below).
for node in prof-a prof-b; do
    i=0
    until fetch "http://$COLLECT_HTTP/profiles?node=$node&trigger=periodic" | flat | grep -q '"id":"'; do
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "profiles-smoke: no periodic captures pulled from $node" >&2
            fetch "http://$COLLECT_HTTP/profiles" >&2 || true
            cat "$TMP/obscollect.log" >&2
            exit 1
        fi
        sleep 0.1
    done
done

# The spool directory holds the pulled captures on disk.
if ! ls "$TMP/spool"/*.pprof >/dev/null 2>&1; then
    echo "profiles-smoke: spool directory has no .pprof files" >&2
    ls -la "$TMP/spool" >&2 || true
    exit 1
fi

# A pulled goroutine capture renders through the dep-free ?view=top path.
GID=$(fetch "http://$COLLECT_HTTP/profiles?node=prof-a&kind=goroutine" | flat |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p' | head -1)
if [ -z "$GID" ]; then
    echo "profiles-smoke: no goroutine capture for prof-a" >&2
    fetch "http://$COLLECT_HTTP/profiles?node=prof-a" >&2 || true
    exit 1
fi
fetch "http://$COLLECT_HTTP/profiles/$GID?view=top" | grep -q 'goroutine profile: total' || {
    echo "profiles-smoke: ?view=top did not render capture $GID" >&2
    fetch "http://$COLLECT_HTTP/profiles/$GID?view=top" >&2 || true
    exit 1
}

# Fault: kill prof-b. Deadman must fire, and because the node is gone the
# flight recorder cannot capture live — it must fall back to linking the
# captures it already pulled, so the alert still carries pprof evidence.
kill -9 "$BPID"
wait "$BPID" 2>/dev/null || true
i=0
until fetch "http://$COLLECT_HTTP/alerts" | flat |
    grep -q '"rule":"deadman","node":"prof-b","state":"firing"'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "profiles-smoke: deadman never fired for killed prof-b" >&2
        fetch "http://$COLLECT_HTTP/alerts" >&2 || true
        cat "$TMP/obscollect.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Flight-recorder linkage is asynchronous; poll for the profile refs on the
# alert (their ids are prefixed with the node they were captured from).
i=0
until fetch "http://$COLLECT_HTTP/alerts" | flat |
    grep -q '"profiles":\[{"id":"[0-9]*-prof-b'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "profiles-smoke: deadman alert never linked prof-b captures" >&2
        fetch "http://$COLLECT_HTTP/alerts" >&2 || true
        cat "$TMP/obscollect.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "profiles-smoke: ok (periodic captures pulled + spooled, view=top rendered, dead-node alert linked retained profiles)"
