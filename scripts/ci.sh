#!/bin/sh
# ci.sh is the complete pre-merge gate: the tier-1 verify target (build, vet,
# gofmt, tests, race) followed by the observability smoke test on real
# sockets (broker telemetry endpoint + collector/prober end-to-end trace).
set -eu
cd "$(dirname "$0")/.."

echo "ci: make verify"
make verify

echo "ci: make obs-smoke"
make obs-smoke

echo "ci: ok"
