#!/bin/sh
# ci.sh is the complete pre-merge gate: fast static checks first (vet, then
# race-enabled tests for the observability plane, the packages most exposed to
# concurrency bugs), the tier-1 verify target (build, vet, gofmt, tests,
# race), and finally the two real-socket smoke tests (collector/prober trace
# assembly, and health-engine failure detection).
set -eu
cd "$(dirname "$0")/.."

echo "ci: go vet ./..."
go vet ./...

echo "ci: go test -race ./internal/obs/..."
go test -race ./internal/obs/...

echo "ci: make verify"
make verify

echo "ci: make obs-smoke"
make obs-smoke

echo "ci: make health-smoke"
make health-smoke

echo "ci: ok"
