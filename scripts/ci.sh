#!/bin/sh
# ci.sh is the complete pre-merge gate: fast static checks first (vet, then
# race-enabled tests for the observability plane and the chaos/supervision
# packages, the ones most exposed to concurrency bugs), the tier-1 verify
# target (build, vet, gofmt, tests, race), the publish fan-out performance
# gate (>2% ns/op regression or any new allocation on the fast path fails),
# and finally the eight real-socket smoke tests (collector/prober trace
# assembly, per-topic flow accounting + message sampling, health-engine
# failure detection, self-healing BDN re-registration, the open-loop load
# generator, the control-plane event journal with topology time-travel, the
# continuous-profiling plane with its flight-recorder fallback, and the
# replicated-BDN failover with zero re-registrations).
set -eu
cd "$(dirname "$0")/.."

echo "ci: go vet ./..."
go vet ./...

echo "ci: go test -race ./internal/obs/..."
go test -race ./internal/obs/...

echo "ci: go test -race ./internal/supervise/ ./internal/testbed/"
go test -race ./internal/supervise/ ./internal/testbed/

echo "ci: go test -race ./internal/wal/ ./internal/bdn/replica/"
go test -race ./internal/wal/ ./internal/bdn/replica/

echo "ci: make verify"
make verify

echo "ci: make bench-gate"
make bench-gate

echo "ci: make loadgen-smoke"
make loadgen-smoke

echo "ci: make obs-smoke"
make obs-smoke

echo "ci: make flows-smoke"
make flows-smoke

echo "ci: make health-smoke"
make health-smoke

echo "ci: make chaos-smoke"
make chaos-smoke

echo "ci: make events-smoke"
make events-smoke

echo "ci: make profiles-smoke"
make profiles-smoke

echo "ci: make durability-smoke"
make durability-smoke

echo "ci: ok"
