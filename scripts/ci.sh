#!/bin/sh
# ci.sh is the complete pre-merge gate: fast static checks first (vet, then
# race-enabled tests for the observability plane and the chaos/supervision
# packages, the ones most exposed to concurrency bugs), the tier-1 verify
# target (build, vet, gofmt, tests, race), and finally the three real-socket
# smoke tests (collector/prober trace assembly, health-engine failure
# detection, and self-healing BDN re-registration).
set -eu
cd "$(dirname "$0")/.."

echo "ci: go vet ./..."
go vet ./...

echo "ci: go test -race ./internal/obs/..."
go test -race ./internal/obs/...

echo "ci: go test -race ./internal/supervise/ ./internal/testbed/"
go test -race ./internal/supervise/ ./internal/testbed/

echo "ci: make verify"
make verify

echo "ci: make obs-smoke"
make obs-smoke

echo "ci: make health-smoke"
make health-smoke

echo "ci: make chaos-smoke"
make chaos-smoke

echo "ci: ok"
