#!/bin/sh
# events_smoke.sh smoke-tests the control-plane event journal on real sockets:
# a BDN and two linked brokers export their journals into an obscollect. After
# kill -9 on the dialed broker, the survivor's link_down and a burst of failed
# reconnect_attempt events must appear on /events, /topology?at= must answer
# differently for instants before and after the teardown (time travel), and
# the deadman alert for the dead broker must embed its correlated event
# window.
#
# Uses curl or wget, whichever the host has.
set -eu

BDN_STREAM="127.0.0.1:17610"
BROKER_B_STREAM="127.0.0.1:17621"
COLLECT_UDP="127.0.0.1:17710"
COLLECT_HTTP="127.0.0.1:17711"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "events-smoke: need curl or wget" >&2
        exit 1
    fi
}

# flat fetches a JSON endpoint with whitespace stripped so multi-line objects
# grep as a unit.
flat() {
    fetch "$1" | tr -d ' \n\t'
}

wait_for() { # wait_for <url> <what> <logfile>
    i=0
    until fetch "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "events-smoke: $2 never came up" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

go build -o "$TMP/broker" ./cmd/broker
go build -o "$TMP/bdn" ./cmd/bdn
go build -o "$TMP/obscollect" ./cmd/obscollect

"$TMP/bdn" -bind 127.0.0.1 -name gridservicelocator.org -stream-port 17610 \
    -obs-export "$COLLECT_UDP" >"$TMP/bdn.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.3

"$TMP/broker" -bind 127.0.0.1 -logical events-b -stream-port 17621 \
    -bdn "$BDN_STREAM" -obs-export "$COLLECT_UDP" >"$TMP/broker-b.log" 2>&1 &
BPID=$!
PIDS="$PIDS $BPID"
sleep 0.3

# events-a dials events-b under supervision: after the kill it owns the
# link_down and the reconnect_attempt burst.
"$TMP/broker" -bind 127.0.0.1 -logical events-a -bdn "$BDN_STREAM" \
    -link "$BROKER_B_STREAM" -supervise \
    -obs-export "$COLLECT_UDP" >"$TMP/broker-a.log" 2>&1 &
PIDS="$PIDS $!"

"$TMP/obscollect" -listen "$COLLECT_UDP" -http "$COLLECT_HTTP" \
    -export-interval 1s -deadman-intervals 3 -health-interval 200ms \
    >"$TMP/obscollect.log" 2>&1 &
PIDS="$PIDS $!"

wait_for "http://$COLLECT_HTTP/healthz" "collector" "$TMP/obscollect.log"

# The fabric's link must be on the live topology before the fault.
i=0
until flat "http://$COLLECT_HTTP/topology" | grep -q '"from":"events-a","to":"events-b"'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "events-smoke: link events-a -> events-b never reached /topology" >&2
        fetch "http://$COLLECT_HTTP/topology" >&2 || true
        fetch "http://$COLLECT_HTTP/events" >&2 || true
        exit 1
    fi
    sleep 0.1
done

# Pin the pre-kill instant, let one more export flush past it, then kill.
T_PRE=$(date -u +%Y-%m-%dT%H:%M:%SZ)
sleep 1.5
kill -9 "$BPID"
wait "$BPID" 2>/dev/null || true

# The survivor's journal must record the teardown and the redial burst.
i=0
until flat "http://$COLLECT_HTTP/events?type=link_down&node=events-a" | grep -q '"subject":"events-b"'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "events-smoke: no link_down for events-b on /events" >&2
        fetch "http://$COLLECT_HTTP/events" >&2 || true
        cat "$TMP/broker-a.log" >&2
        exit 1
    fi
    sleep 0.1
done
i=0
while :; do
    ATTEMPTS=$(flat "http://$COLLECT_HTTP/events?type=reconnect_attempt" |
        grep -o '"detail":"fail' | wc -l)
    [ "$ATTEMPTS" -ge 2 ] && break
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "events-smoke: no reconnect_attempt burst on /events (saw $ATTEMPTS)" >&2
        fetch "http://$COLLECT_HTTP/events?type=reconnect_attempt" >&2 || true
        exit 1
    fi
    sleep 0.1
done

# Time travel: the link is present at the pre-kill instant and absent now.
T_POST=$(date -u +%Y-%m-%dT%H:%M:%SZ)
if ! flat "http://$COLLECT_HTTP/topology?at=$T_PRE" | grep -q '"from":"events-a","to":"events-b"'; then
    echo "events-smoke: /topology?at=$T_PRE lost the pre-kill link" >&2
    fetch "http://$COLLECT_HTTP/topology?at=$T_PRE" >&2 || true
    exit 1
fi
if flat "http://$COLLECT_HTTP/topology?at=$T_POST" | grep -q '"from":"events-a","to":"events-b"'; then
    echo "events-smoke: /topology?at=$T_POST still shows the torn-down link" >&2
    fetch "http://$COLLECT_HTTP/topology?at=$T_POST" >&2 || true
    exit 1
fi

# The deadman alert for the dead broker must carry its event window: the
# surviving peer's evidence, plus a /events URL selecting the full window.
i=0
until flat "http://$COLLECT_HTTP/alerts" | grep -q '"rule":"deadman","node":"events-b","state":"firing"'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "events-smoke: deadman never fired for the killed broker" >&2
        fetch "http://$COLLECT_HTTP/alerts" >&2 || true
        exit 1
    fi
    sleep 0.1
done
ALERTS=$(flat "http://$COLLECT_HTTP/alerts")
case "$ALERTS" in
*'"eventWindow":{'*'"url":"/events?'*) ;;
*)
    echo "events-smoke: deadman alert carries no event window" >&2
    fetch "http://$COLLECT_HTTP/alerts" >&2 || true
    exit 1
    ;;
esac

echo "events-smoke: ok (link_down + reconnect burst journalled, topology time-travel consistent, deadman linked to its event window)"
