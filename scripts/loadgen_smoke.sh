#!/bin/sh
# loadgen_smoke.sh boots a real broker on loopback sockets and drives the
# open-loop load generator through two short fixed-rate stages, then asserts
# the JSON report shows every published event delivered and sane latency
# percentiles (0 < p50 <= p99 <= p999). This is the end-to-end proof that the
# pacing loop, the scheduled-departure stamping and the HDR recording all
# work against a live broker, not just in unit tests.
set -eu
cd "$(dirname "$0")/.."

STREAM_PORT=19401
UDP_PORT=19402
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

go build -o "$TMP/broker" ./cmd/broker
go build -o "$TMP/loadgen" ./cmd/loadgen

"$TMP/broker" -bind 127.0.0.1 -logical loadgen-smoke-broker \
    -stream-port "$STREAM_PORT" -udp-port "$UDP_PORT" >"$TMP/broker.log" 2>&1 &
PIDS="$PIDS $!"

# Wait for the stream listener to come up.
i=0
until "$TMP/loadgen" -addr "127.0.0.1:$STREAM_PORT" -rates 100 -duration 100ms \
    -warmup 0 -subs 1 -drain 500ms -out "$TMP/probe.json" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 30 ]; then
        echo "loadgen-smoke: broker never came up" >&2
        cat "$TMP/broker.log" >&2
        exit 1
    fi
    sleep 0.2
done

"$TMP/loadgen" -addr "127.0.0.1:$STREAM_PORT" -rates 1000,5000 -duration 1s \
    -subs 2 -out "$TMP/report.json" 2>"$TMP/loadgen.log" || {
    echo "loadgen-smoke: loadgen failed" >&2
    cat "$TMP/loadgen.log" >&2
    cat "$TMP/broker.log" >&2
    exit 1
}

awk '
/"offered_rate_eps"/ { stages++ }
/"lost"/            { gsub(/[^0-9-]/, ""); lost += $0 + 0 }
/"delivered"/       { gsub(/[^0-9]/, ""); delivered += $0 + 0 }
/"p50_us"/          { gsub(/[^0-9.]/, ""); p50 = $0 + 0; if (p50 <= 0) bad = "p50 not positive" }
/"p99_us"/          { gsub(/[^0-9.]/, ""); p99 = $0 + 0; if (p99 + 0 < p50) bad = "p99 below p50" }
/"p999_us"/         { gsub(/[^0-9.]/, ""); if ($0 + 0 < p99) bad = "p999 below p99" }
END {
    if (stages != 2) { print "loadgen-smoke: expected 2 stages, saw " stages > "/dev/stderr"; exit 1 }
    if (delivered == 0) { print "loadgen-smoke: nothing delivered" > "/dev/stderr"; exit 1 }
    if (lost != 0) { print "loadgen-smoke: " lost " events lost on loopback" > "/dev/stderr"; exit 1 }
    if (bad != "") { print "loadgen-smoke: " bad > "/dev/stderr"; exit 1 }
    print "loadgen-smoke: ok (" stages " stages, " delivered " deliveries, 0 lost)"
}' "$TMP/report.json" || {
    cat "$TMP/report.json" >&2
    exit 1
}
