#!/bin/sh
# flows_smoke.sh smoke-tests per-topic flow accounting and message-path
# sampling on real processes: an obscollect, a broker exporting with the
# publish sampler enabled, and the open-loop load generator driving traffic.
# Passing means:
#
#  1. The collector's /flows endpoint lists the loadgen topic in the
#     fabric-wide merge with non-zero published and delivered counts.
#  2. At least one message-kind trace assembled on /traces — the sampler's
#     decision-at-publish stamp travelled broker -> collector.
#
# Uses curl or wget, whichever the host has.
set -eu

BROKER_STREAM=17420
COLLECT_UDP="127.0.0.1:17421"
COLLECT_HTTP="127.0.0.1:17422"
TOPIC="flows/smoke/topic"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "flows-smoke: need curl or wget" >&2
        exit 1
    fi
}

wait_for() { # wait_for <url> <out> <what> <logfile>
    i=0
    until fetch "$1" >"$2" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "flows-smoke: $3 never came up" >&2
            cat "$4" >&2
            exit 1
        fi
        sleep 0.1
    done
}

go build -o "$TMP/broker" ./cmd/broker
go build -o "$TMP/obscollect" ./cmd/obscollect
go build -o "$TMP/loadgen" ./cmd/loadgen

"$TMP/obscollect" -listen "$COLLECT_UDP" -http "$COLLECT_HTTP" \
    >"$TMP/obscollect.log" 2>&1 &
PIDS="$PIDS $!"

wait_for "http://$COLLECT_HTTP/healthz" "$TMP/chealthz" "collector" "$TMP/obscollect.log"

# Sampling compiled in AND enabled: every 8th origin publish gets a message
# trace, capped per topic so the storm cannot flood the collector.
"$TMP/broker" -bind 127.0.0.1 -logical flows-broker -stream-port "$BROKER_STREAM" \
    -obs-export "$COLLECT_UDP" -sample-every 8 -sample-topic-persec 50 \
    >"$TMP/broker.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.3

"$TMP/loadgen" -addr "127.0.0.1:$BROKER_STREAM" -rates 2000 -duration 2s \
    -topic "$TOPIC" -subs 2 -warmup 200ms -out "$TMP/loadgen.json" \
    >"$TMP/loadgen.log" 2>&1 || {
    echo "flows-smoke: loadgen failed" >&2
    cat "$TMP/loadgen.log" >&2
    cat "$TMP/broker.log" >&2
    exit 1
}

# The broker ships its flow table with every metrics snapshot; poll until the
# topic shows up fabric-wide with real delivered volume.
i=0
while :; do
    fetch "http://$COLLECT_HTTP/flows" >"$TMP/flows" 2>/dev/null || true
    if grep -q "\"topic\": \"$TOPIC\"" "$TMP/flows"; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "flows-smoke: /flows never listed $TOPIC" >&2
        echo "--- flows:" >&2; cat "$TMP/flows" >&2 || true
        echo "--- broker:" >&2; cat "$TMP/broker.log" >&2
        echo "--- obscollect:" >&2; cat "$TMP/obscollect.log" >&2
        exit 1
    fi
    sleep 0.1
done

ROW=$(grep -A4 "\"topic\": \"$TOPIC\"" "$TMP/flows" | head -5)
PUB=$(printf '%s\n' "$ROW" | sed -n 's/.*"published_msgs": \([0-9]*\).*/\1/p' | head -1)
DEL=$(printf '%s\n' "$ROW" | sed -n 's/.*"delivered_msgs": \([0-9]*\).*/\1/p' | head -1)
if [ -z "$PUB" ] || [ "$PUB" -eq 0 ] || [ -z "$DEL" ] || [ "$DEL" -eq 0 ]; then
    echo "flows-smoke: $TOPIC accounting empty (published=$PUB delivered=$DEL)" >&2
    cat "$TMP/flows" >&2
    exit 1
fi

# The sampler must have produced at least one assembled message trace.
i=0
while :; do
    fetch "http://$COLLECT_HTTP/traces" >"$TMP/traces" 2>/dev/null || true
    if grep -q '"kind": "message"' "$TMP/traces"; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "flows-smoke: no message-kind trace assembled" >&2
        echo "--- traces:" >&2; cat "$TMP/traces" >&2 || true
        echo "--- broker:" >&2; cat "$TMP/broker.log" >&2
        exit 1
    fi
    sleep 0.1
done

TRACES=$(grep -c '"kind": "message"' "$TMP/traces" || true)
echo "flows-smoke: ok ($TOPIC published=$PUB delivered=$DEL on /flows, $TRACES message traces assembled)"
