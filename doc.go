// Package narada reproduces "On the Discovery of Brokers in Distributed
// Messaging Infrastructures" (Pallickara, Gadgil & Fox, CLUSTER 2005): a
// NaradaBrokering-style publish/subscribe substrate, Broker Discovery Nodes,
// and the dynamic nearest-broker discovery scheme, together with the
// simulated five-site WAN testbed and the benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for measured-vs-paper results.
package narada
